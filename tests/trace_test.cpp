// Observability suite: the rtle::trace subsystem. Covers the SPSC event
// ring (wraparound + exact drop accounting), the log-linear latency
// histogram (percentile accuracy against exact quantiles), the ambient
// TraceSession scope discipline, the Chrome trace-event exporter (output
// round-trips through the bundled JSON parser), and the two promises the
// design leans on: a traced run follows the exact schedule of an untraced
// one, and identical seeds yield byte-identical trace documents.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/setbench.h"
#include "ds/bank.h"
#include "oltp/store.h"
#include "runtime/engine.h"
#include "runtime/stats.h"
#include "sim/env.h"
#include "test_util.h"
#include "trace/event.h"
#include "trace/export.h"
#include "trace/histo.h"
#include "trace/json.h"
#include "trace/ring.h"
#include "trace/session.h"

namespace rtle {
namespace {

using runtime::MethodStats;
using runtime::ThreadCtx;
using runtime::TxContext;
using sim::MachineConfig;
using trace::EventRing;
using trace::EventType;
using trace::LatencyHisto;
using trace::TraceEvent;
using trace::TraceSession;

// ---------------------------------------------------------------------------
// EventRing: capacity rounding, wraparound, drop accounting.

TEST(EventRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventRing(0).capacity(), 2u);
  EXPECT_EQ(EventRing(1).capacity(), 2u);
  EXPECT_EQ(EventRing(3).capacity(), 4u);
  EXPECT_EQ(EventRing(32).capacity(), 32u);
  EXPECT_EQ(EventRing(33).capacity(), 64u);
}

TraceEvent ev_with_ts(std::uint64_t ts) {
  TraceEvent ev{};
  ev.ts = ts;
  ev.type = static_cast<std::uint16_t>(EventType::kTxnBegin);
  return ev;
}

TEST(EventRing, NoWraparoundKeepsEverything) {
  EventRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) ring.push(ev_with_ts(i));
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.pushed(), 5u);
  EXPECT_EQ(ring.drops(), 0u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(ring.at(i).ts, i);
}

TEST(EventRing, WraparoundOverwritesOldestWithExactDropAccounting) {
  EventRing ring(8);
  for (std::uint64_t i = 0; i < 20; ++i) ring.push(ev_with_ts(i));
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.pushed(), 20u);
  EXPECT_EQ(ring.drops(), 12u);
  EXPECT_EQ(ring.pushed(), ring.size() + ring.drops());
  // Survivors are the 8 newest, oldest-first.
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(ring.at(i).ts, 12 + i);
  std::uint64_t seen = 0;
  ring.for_each([&](const TraceEvent& e) {
    EXPECT_EQ(e.ts, 12 + seen);
    seen += 1;
  });
  EXPECT_EQ(seen, 8u);
}

TEST(EventRing, RecordIsFixedSize) {
  EXPECT_EQ(sizeof(TraceEvent), 24u);
}

// ---------------------------------------------------------------------------
// LatencyHisto: bucket math and percentile accuracy vs. exact quantiles.

TEST(LatencyHisto, BucketIndexIsIdentityBelow64) {
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(LatencyHisto::bucket_index(v), v);
    EXPECT_EQ(LatencyHisto::bucket_upper(v), v);
  }
}

TEST(LatencyHisto, BucketUpperBoundsValueWithinOneThirtySecond) {
  for (std::uint64_t v : {64ULL, 65ULL, 100ULL, 1000ULL, 4095ULL, 4096ULL,
                          123456789ULL, (1ULL << 40) + 12345ULL}) {
    const std::size_t idx = LatencyHisto::bucket_index(v);
    const std::uint64_t upper = LatencyHisto::bucket_upper(idx);
    EXPECT_GE(upper, v) << v;
    EXPECT_LE(upper - v, v / 32) << v;
    // Monotonic: the next bucket's upper bound is strictly larger.
    EXPECT_GT(LatencyHisto::bucket_upper(idx + 1), upper) << v;
  }
}

TEST(LatencyHisto, PercentilesExactBelow64) {
  LatencyHisto h;
  for (std::uint64_t v = 0; v < 64; ++v) h.add(v);
  // rank = ceil(p/100 * 64); value = rank - 1 (samples are 0..63).
  EXPECT_EQ(h.percentile(50), 31u);
  EXPECT_EQ(h.percentile(100), 63u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 63u);
  EXPECT_EQ(h.count(), 64u);
}

TEST(LatencyHisto, PercentileWithinBoundedRelativeError) {
  // Samples 1..N: the exact p-quantile is simply ceil(p/100 * N). The
  // histogram must report a value in [exact, exact * (1 + 1/32)].
  constexpr std::uint64_t kN = 200000;
  LatencyHisto h;
  // Insertion order is irrelevant to a histogram; use a stride walk to not
  // depend on it anyway.
  for (std::uint64_t i = 0; i < kN; ++i) h.add((i * 7919) % kN + 1);
  EXPECT_EQ(h.count(), kN);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), kN);
  EXPECT_NEAR(h.mean(), (kN + 1) / 2.0, (kN + 1) / 2.0 * 1e-9);
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    const auto exact =
        static_cast<std::uint64_t>(std::ceil(p / 100.0 * kN));
    const std::uint64_t got = h.percentile(p);
    EXPECT_GE(got, exact) << "p=" << p;
    EXPECT_LE(got, exact + exact / 32) << "p=" << p;
  }
  // The top percentile clamps to the recorded maximum, not a bucket bound.
  EXPECT_EQ(h.percentile(100), kN);
}

TEST(LatencyHisto, SummaryMentionsEveryQuantile) {
  LatencyHisto h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  const std::string s = h.summary();
  for (const char* key : {"n=1000", "mean=", "p50=", "p90=", "p99=",
                          "p999=", "max=1000"}) {
    EXPECT_NE(s.find(key), std::string::npos) << s;
  }
  EXPECT_EQ(LatencyHisto().summary().rfind("n=0 mean=0.0 ", 0), 0u);
}

// ---------------------------------------------------------------------------
// TraceSession: ambient scope discipline (the FaultPlanScope pattern).

TEST(TraceSession, InstallsAndRestoresAmbientSession) {
  EXPECT_EQ(trace::active_trace(), nullptr);
  {
    TraceSession outer;
    EXPECT_EQ(trace::active_trace(), &outer);
    {
      TraceSession inner;
      EXPECT_EQ(trace::active_trace(), &inner);
    }
    EXPECT_EQ(trace::active_trace(), &outer);
  }
  EXPECT_EQ(trace::active_trace(), nullptr);
}

TEST(TraceSession, EmitOutsideSimulationUsesZeroStamp) {
  TraceSession s;
  s.emit(EventType::kModeSwitch, 0, 7);
  ASSERT_EQ(s.rings().size(), 1u);
  ASSERT_EQ(s.rings()[0]->size(), 1u);
  const TraceEvent& ev = s.rings()[0]->at(0);
  EXPECT_EQ(ev.ts, 0u);
  EXPECT_EQ(ev.tid, 0u);
  EXPECT_EQ(ev.arg, 7u);
  EXPECT_EQ(s.total_events(), 1u);
  EXPECT_EQ(s.total_drops(), 0u);
}

// ---------------------------------------------------------------------------
// Traced workload harness: the bank benchmark under a method, with or
// without a TraceSession installed around the whole simulation.

constexpr std::size_t kAccounts = 64;
constexpr std::uint64_t kInitialBalance = 1000;

MethodStats run_bank(runtime::SyncMethod& method, std::uint32_t threads,
                     std::uint64_t ops_per_thread) {
  SimScope sim(MachineConfig::corei7());
  ds::BankAccounts bank(kAccounts, kInitialBalance);
  method.prepare(threads);
  test::run_workers(sim, threads, ops_per_thread, /*seed=*/42,
                    [&](ThreadCtx& th, std::uint64_t) {
                      const std::size_t from = th.rng.below(bank.size());
                      std::size_t to = th.rng.below(bank.size() - 1);
                      if (to >= from) ++to;
                      const std::uint64_t amount = th.rng.below(100) + 1;
                      auto cs = [&](TxContext& ctx) {
                        bank.transfer(ctx, from, to, amount);
                      };
                      method.execute(th, cs);
                    });
  return method.stats();
}

struct TracedRun {
  MethodStats stats;
  std::string json;
  std::uint64_t cs_samples = 0;
  std::uint64_t lock_waits = 0;
  std::uint64_t events = 0;
  std::uint64_t drops = 0;
  std::string text;
};

TracedRun run_traced_bank(const std::string& method_name,
                          std::uint32_t threads, std::uint64_t ops,
                          trace::SessionConfig scfg = {}) {
  TraceSession session(scfg);
  auto method = bench::method_by_name(method_name).make();
  TracedRun out;
  out.stats = run_bank(*method, threads, ops);
  out.json = trace::chrome_trace_json(session);
  out.cs_samples = session.cs_latency().count();
  out.lock_waits = session.lock_wait().count();
  out.events = session.total_events();
  out.drops = session.total_drops();
  out.text = trace::text_summary(session);
  return out;
}

// Fiber-switch records are a schedule-debugging firehose (a spin-waiting
// thread switches every few cycles and would evict every txn/lock record),
// so they are opt-in.
TEST(TraceSession, FiberSwitchTracingIsOptIn) {
  const TracedRun off = run_traced_bank("TLE", 2, 50);
  EXPECT_EQ(off.text.find("fiber-switch"), std::string::npos) << off.text;
  trace::SessionConfig scfg;
  scfg.trace_fiber_switches = true;
  const TracedRun on = run_traced_bank("TLE", 2, 50, scfg);
  EXPECT_GT(on.events, off.events);
  EXPECT_NE(on.text.find("fiber-switch"), std::string::npos) << on.text;
}

// ---------------------------------------------------------------------------
// Exporter: the Chrome trace document is valid JSON (round-tripped through
// the bundled parser) and its slices add up to the method's own counters.

TEST(TraceExport, ChromeTraceRoundTripsThroughJsonParser) {
  const TracedRun run = run_traced_bank("TLE", 4, 200);
  ASSERT_EQ(run.drops, 0u) << "enlarge the default ring for this workload";

  trace::json::Value doc;
  std::string err;
  ASSERT_TRUE(trace::json::parse(run.json, doc, &err)) << err;
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.get_string("displayTimeUnit"), "ms");
  const trace::json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->arr.empty());

  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t meta = 0;
  std::uint64_t lock_held = 0;
  for (const auto& ev : events->arr) {
    ASSERT_TRUE(ev.is_object());
    const std::string ph = ev.get_string("ph");
    ASSERT_FALSE(ph.empty());
    if (ph == "M") {
      meta += 1;
      continue;
    }
    const std::string name = ev.get_string("name");
    const trace::json::Value* args = ev.find("args");
    if (ph == "X" && name.rfind("txn-", 0) == 0) {
      ASSERT_NE(args, nullptr);
      const std::string outcome = args->get_string("outcome");
      if (outcome == "commit") commits += 1;
      if (outcome == "abort") {
        aborts += 1;
        EXPECT_FALSE(args->get_string("cause").empty());
      }
    }
    if (ph == "X" && name == "lock-held") lock_held += 1;
  }
  // One metadata record per simulated thread, one commit slice per op, one
  // abort slice per recorded abort, one lock-held slice per acquisition —
  // exact because nothing was dropped.
  EXPECT_EQ(meta, 4u);
  EXPECT_EQ(commits, run.stats.ops);
  EXPECT_EQ(aborts, run.stats.aborts_fast + run.stats.aborts_slow);
  EXPECT_EQ(lock_held, run.stats.lock_acquisitions);
}

TEST(TraceExport, TextSummaryReportsCountsAndLatency) {
  const TracedRun run = run_traced_bank("FG-TLE(16)", 3, 100);
  for (const char* key :
       {"thread 0:", "thread 2:", "total:", "cs-latency:", "lock-wait:"}) {
    EXPECT_NE(run.text.find(key), std::string::npos) << run.text;
  }
}

// ---------------------------------------------------------------------------
// Latency wiring: the histograms and MethodStats slots agree with the
// method's own commit/lock accounting.

TEST(TraceLatency, HistogramCountsMatchMethodCounters) {
  const TracedRun run = run_traced_bank("TLE", 4, 200);
  EXPECT_EQ(run.cs_samples, run.stats.ops);
  EXPECT_EQ(run.stats.latency_samples, run.stats.ops);
  EXPECT_EQ(run.lock_waits, run.stats.lock_acquisitions);
  const std::string s = run.stats.summary();
  EXPECT_NE(s.find("trace("), std::string::npos) << s;
}

// ---------------------------------------------------------------------------
// Zero-overhead promise: a traced run follows the exact schedule of an
// untraced one — every simulation-visible counter matches; only the
// trace-side MethodStats slots differ.

TEST(TraceOverhead, TracedRunMatchesUntracedSchedule) {
  auto untraced = bench::method_by_name("FG-TLE(16)").make();
  const MethodStats base = run_bank(*untraced, 6, 150);

  const TracedRun traced = run_traced_bank("FG-TLE(16)", 6, 150);
  const MethodStats& st = traced.stats;
  EXPECT_EQ(st.ops, base.ops);
  EXPECT_EQ(st.commit_fast_htm, base.commit_fast_htm);
  EXPECT_EQ(st.commit_slow_htm, base.commit_slow_htm);
  EXPECT_EQ(st.commit_lock, base.commit_lock);
  EXPECT_EQ(st.aborts_fast, base.aborts_fast);
  EXPECT_EQ(st.aborts_slow, base.aborts_slow);
  EXPECT_EQ(st.lock_acquisitions, base.lock_acquisitions);
  EXPECT_EQ(st.cycles_under_lock, base.cycles_under_lock);
  EXPECT_EQ(st.slow_htm_while_locked, base.slow_htm_while_locked);
  // The only divergence: trace-side sample accounting.
  EXPECT_EQ(base.latency_samples, 0u);
  EXPECT_EQ(st.latency_samples, st.ops);
}

// ---------------------------------------------------------------------------
// Determinism: identical seeds yield byte-identical trace documents.

TEST(TraceDeterminism, IdenticalRunsExportByteIdenticalTraces) {
  const TracedRun a = run_traced_bank("FG-TLE(16)", 6, 150);
  const TracedRun b = run_traced_bank("FG-TLE(16)", 6, 150);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.text, b.text);
}

// ---------------------------------------------------------------------------
// Wraparound under load: a deliberately tiny ring drops events with exact
// accounting, and the exporter still produces a well-formed document.

TEST(TraceWraparound, TinyRingDropsExactlyAndStillExports) {
  trace::SessionConfig scfg;
  scfg.ring_capacity = 64;
  const TracedRun run = run_traced_bank("TLE", 4, 400, scfg);
  EXPECT_GT(run.drops, 0u);
  // total_events() counts records ever pushed; emission is meta-level, so
  // it cannot depend on ring capacity — only what survives does.
  const TracedRun big = run_traced_bank("TLE", 4, 400);
  EXPECT_EQ(big.drops, 0u);
  EXPECT_EQ(run.events, big.events)
      << "event emission must be independent of ring capacity";

  trace::json::Value doc;
  std::string err;
  ASSERT_TRUE(trace::json::parse(run.json, doc, &err)) << err;
  const trace::json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_FALSE(events->arr.empty());
}

// ---------------------------------------------------------------------------
// JSON parser corners (the exporter's correctness proof leans on it).

TEST(TraceJson, ParsesScalarsStringsAndNesting) {
  trace::json::Value v;
  ASSERT_TRUE(trace::json::parse(
      "{\"a\":[1,2.5,-3],\"b\":{\"c\":\"x\\ny\"},\"d\":true,\"e\":null}",
      v));
  ASSERT_TRUE(v.is_object());
  const trace::json::Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->arr.size(), 3u);
  EXPECT_EQ(a->arr[0].number, 1.0);
  EXPECT_EQ(a->arr[1].number, 2.5);
  EXPECT_EQ(a->arr[2].number, -3.0);
  EXPECT_EQ(v.find("b")->get_string("c"), "x\ny");
  EXPECT_TRUE(v.find("d")->boolean);
  EXPECT_EQ(v.find("e")->kind, trace::json::Value::Kind::kNull);
}

TEST(TraceJson, RejectsMalformedInput) {
  trace::json::Value v;
  std::string err;
  EXPECT_FALSE(trace::json::parse("{\"a\":}", v, &err));
  EXPECT_FALSE(trace::json::parse("[1,2", v, &err));
  EXPECT_FALSE(trace::json::parse("{} trailing", v, &err));
  EXPECT_FALSE(trace::json::parse("", v, &err));
}

// ---------------------------------------------------------------------------
// OLTP per-shard events: emission, Chrome export pairing, and the
// trace_stats per-shard analysis view.

/// A small forced-fallback oltp run (cross_trials=0 so every multi-shard
/// transaction takes the pessimistic path and emits shard guard events),
/// exported as a Chrome trace JSON document.
std::string oltp_trace_json() {
  TraceSession session;
  SimScope sim(MachineConfig::corei7());
  oltp::StoreConfig sc;
  sc.shards = 4;
  sc.buckets_per_shard = 64;
  sc.max_nodes_per_shard = 256;
  sc.max_threads = 2;
  sc.cross_trials = 0;
  oltp::Store store(sc, bench::method_by_name("TLE"));
  for (std::uint64_t k = 0; k < 64; ++k) store.prefill_meta(k, 100);
  test::run_workers(sim, 2, 40, 9, [&](ThreadCtx& th, std::uint64_t i) {
    if (i % 2 == 0) {
      std::uint64_t keys[2] = {th.rng.below(64), th.rng.below(64)};
      auto body = [&](oltp::Store::MultiTx& tx) {
        const std::uint64_t v = tx.read(keys[0]);
        tx.write(keys[0], v - 1);
        const std::uint64_t w = tx.read(keys[1]);
        tx.write(keys[1], w + 1);
      };
      store.multi(th, keys, 2, body);
    } else {
      std::uint64_t out = 0;
      store.get(th, th.rng.below(64), out);
    }
  });
  return trace::chrome_trace_json(session);
}

TEST(TraceOltp, PerShardEventsPairIntoSlices) {
  const std::string json = oltp_trace_json();
  trace::json::Value doc;
  ASSERT_TRUE(trace::json::parse(json, doc));
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::size_t shard_held = 0, cross = 0, shard_commit = 0;
  std::size_t single_commit = 0, cross_commit = 0;
  for (const auto& ev : events->arr) {
    const std::string name = ev.get_string("name");
    const auto* args = ev.find("args");
    if (name == "shard-held") {
      // Guard windows paired into complete slices, never orphan instants.
      EXPECT_EQ(ev.get_string("ph"), "X");
      ASSERT_NE(args, nullptr);
      EXPECT_LT(args->get_u64("shard"), 4u);
      ++shard_held;
    } else if (name == "cross-txn") {
      EXPECT_EQ(ev.get_string("ph"), "X");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->get_string("path"), "lock");  // cross_trials = 0
      EXPECT_NE(args->get_u64("shards"), 0u);
      ++cross;
    } else if (name == "shard-commit") {
      ASSERT_NE(args, nullptr);
      (args->get_u64("cross") != 0 ? cross_commit : single_commit) += 1;
      ++shard_commit;
    }
  }
  // 2 threads x 20 multi ops, each holding >= 1 guards; 20 single gets.
  EXPECT_EQ(cross, 40u);
  EXPECT_GE(shard_held, cross);
  EXPECT_EQ(single_commit, 40u);
  EXPECT_GE(cross_commit, cross);  // >= 1 involved shard per cross txn
  EXPECT_EQ(shard_commit, single_commit + cross_commit);
}

#ifdef RTLE_TOOL_BIN_DIR
TEST(TraceOltp, TraceStatsReportsThePerShardView) {
  const std::string json = oltp_trace_json();
  const std::string path = ::testing::TempDir() + "rtle_oltp_trace.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);

  const std::string cmd =
      std::string(RTLE_TOOL_BIN_DIR) + "/trace_stats " + path + " 2>&1";
  std::FILE* pipe = popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) out.append(buf, n);
  EXPECT_EQ(pclose(pipe), 0);

  EXPECT_NE(out.find("per-shard summary:"), std::string::npos) << out;
  EXPECT_NE(out.find("per-shard guard-hold timelines"), std::string::npos);
  EXPECT_NE(out.find("cross-shard span chains:"), std::string::npos);
  EXPECT_NE(out.find("path=lock"), std::string::npos);
  std::remove(path.c_str());
}
#endif  // RTLE_TOOL_BIN_DIR

}  // namespace
}  // namespace rtle
