// Tests for the fiber + deterministic scheduler substrate.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/env.h"
#include "sim/fiber.h"
#include "sim/rng.h"
#include "sim/sched.h"

namespace rtle {
namespace {

using sim::MachineConfig;
using sim::Scheduler;

TEST(Fiber, RunsBodyAndFinishes) {
  bool ran = false;
  sim::Context main_ctx;
  sim::Fiber f([&] { ran = true; });
  f.return_to = &main_ctx;
  f.switch_from(main_ctx);
  EXPECT_TRUE(ran);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, PingPongBetweenTwoFibers) {
  // Two fibers alternate via explicit switches; validates that saved
  // contexts survive repeated suspension.
  std::vector<int> order;
  sim::Context main_ctx;
  sim::Fiber* fa = nullptr;
  sim::Fiber* fb = nullptr;
  sim::Fiber a(
      [&] {
        order.push_back(1);
        fb->switch_from(fa->context());  // a -> b
        order.push_back(3);
        fb->switch_from(fa->context());  // a -> b (b resumes, then finishes)
        order.push_back(5);
      });
  sim::Fiber b(
      [&] {
        order.push_back(2);
        fa->switch_from(fb->context());  // b -> a
        order.push_back(4);
        fa->switch_from(fb->context());  // b -> a
      });
  fa = &a;
  fb = &b;
  a.return_to = &main_ctx;
  b.return_to = &main_ctx;
  a.switch_from(main_ctx);  // runs a..5, a finishes -> main
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(a.finished());
}

TEST(Scheduler, RunsAllFibersToCompletion) {
  SimScope s(MachineConfig::corei7());
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    s.sched.spawn([&done] { ++done; }, i);
  }
  s.sched.run();
  EXPECT_EQ(done, 5);
}

TEST(Scheduler, MinClockOrderInterleavesFairly) {
  // Two fibers charging equal costs must alternate: the global order of
  // events is (clock, id)-sorted.
  SimScope s(MachineConfig::corei7());
  std::vector<int> order;
  for (int id = 0; id < 2; ++id) {
    s.sched.spawn(
        [&order, id, &s] {
          for (int i = 0; i < 4; ++i) {
            order.push_back(id);
            s.sched.advance(10);
          }
        },
        id);
  }
  s.sched.run();
  ASSERT_EQ(order.size(), 8u);
  // Each fiber runs until its clock strictly exceeds the other's; with equal
  // charges the deterministic pattern is 0 1 1 0 0 1 1 0 — no fiber ever
  // gets more than two consecutive steps, and both make equal progress.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 1, 0, 0, 1, 1, 0}));
}

TEST(Scheduler, DeterministicAcrossRuns) {
  auto trace = [] {
    SimScope s(MachineConfig::xeon());
    std::string t;
    for (int id = 0; id < 6; ++id) {
      s.sched.spawn(
          [&t, id, &s] {
            sim::Rng rng(100 + id);
            for (int i = 0; i < 50; ++i) {
              t += static_cast<char>('a' + id);
              s.sched.advance(1 + rng.below(20));
            }
          },
          id);
    }
    s.sched.run();
    return t;
  };
  EXPECT_EQ(trace(), trace());
}

TEST(Scheduler, ClockAdvancesByChargedCycles) {
  SimScope s(MachineConfig::corei7());
  std::uint64_t end = 0;
  s.sched.spawn(
      [&] {
        s.sched.advance(123);
        s.sched.advance(77);
        end = s.sched.now();
      },
      0);
  s.sched.run();
  EXPECT_EQ(end, 200u);
}

TEST(Scheduler, SmtPenaltyAppliesOnlyWhenSiblingShares) {
  // corei7 has 4 cores: pins 0 and 4 share core 0; pins 0 and 1 do not.
  auto measure = [](std::uint32_t pin_a, std::uint32_t pin_b) {
    SimScope s(MachineConfig::corei7());
    std::uint64_t clock_a = 0;
    s.sched.spawn(
        [&] {
          for (int i = 0; i < 10; ++i) s.sched.advance(10);
          clock_a = s.sched.now();
        },
        pin_a);
    s.sched.spawn([&] {
      for (int i = 0; i < 10; ++i) s.sched.advance(10);
    },
        pin_b);
    s.sched.run();
    return clock_a;
  };
  const std::uint64_t separate = measure(0, 1);
  const std::uint64_t shared = measure(0, 4);
  EXPECT_EQ(separate, 100u);
  const auto& c = MachineConfig::corei7().cost;
  EXPECT_EQ(shared, 100u * c.smt_penalty_num / c.smt_penalty_den);
}

TEST(Scheduler, EpochCarriesAcrossRounds) {
  SimScope s(MachineConfig::corei7());
  s.sched.spawn([&] { s.sched.advance(500); }, 0);
  s.sched.run();
  EXPECT_EQ(s.sched.epoch(), 500u);
  std::uint64_t start_clock = 0;
  s.sched.spawn([&] { start_clock = s.sched.now(); }, 0);
  s.sched.run();
  EXPECT_EQ(start_clock, 500u);
}

TEST(Scheduler, PinningMapsThreadsToCoresPaperStyle) {
  SimScope s(MachineConfig::xeon());
  std::vector<std::uint32_t> cores(20);
  for (std::uint32_t i = 0; i < 20; ++i) {
    s.sched.spawn([&cores, i, &s] { cores[i] = s.sched.current_core(); }, i);
  }
  s.sched.run();
  for (std::uint32_t i = 0; i < 18; ++i) EXPECT_EQ(cores[i], i);
  EXPECT_EQ(cores[18], 0u);  // thread 18 shares core 0 with thread 0
  EXPECT_EQ(cores[19], 1u);
}

TEST(Zipf, ThetaZeroDegeneratesToUniform) {
  const sim::ZipfRng z(64, 0.0);
  EXPECT_EQ(z.size(), 64u);
  // Every rank carries the identical quantized weight 2^32.
  EXPECT_EQ(z.total_weight(), std::uint64_t{64} << 32);
  for (std::uint64_t k = 0; k < 64; ++k) {
    EXPECT_DOUBLE_EQ(z.mass(k), 1.0 / 64.0);
  }
  int buckets[8] = {0};
  sim::Rng r(5);
  for (int i = 0; i < 80000; ++i) buckets[z.next(r) / 8]++;
  for (int b : buckets) {
    EXPECT_GT(b, 8000);
    EXPECT_LT(b, 12000);
  }
}

TEST(Zipf, MassIsMonotoneNonIncreasingInRank) {
  for (double theta : {0.5, 0.99, 1.2}) {
    const sim::ZipfRng z(1024, theta);
    for (std::uint64_t k = 1; k < 1024; ++k) {
      EXPECT_LE(z.mass(k), z.mass(k - 1)) << "theta=" << theta << " k=" << k;
    }
    // Skew concentrates: rank 0 far above the uniform share.
    EXPECT_GT(z.mass(0), 4.0 / 1024.0) << "theta=" << theta;
  }
}

TEST(Zipf, EmpiricalFrequencyTracksTheTableMass) {
  const sim::ZipfRng z(16, 0.99);
  sim::Rng r(11);
  std::uint64_t hits[16] = {0};
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) hits[z.next(r)]++;
  for (std::uint64_t k = 0; k < 16; ++k) {
    const double freq = static_cast<double>(hits[k]) / kDraws;
    EXPECT_NEAR(freq, z.mass(k), 0.01) << "rank " << k;
  }
}

TEST(Zipf, SamplingIsDeterministicAcrossInstances) {
  const sim::ZipfRng a(512, 0.99);
  const sim::ZipfRng b(512, 0.99);
  EXPECT_EQ(a.total_weight(), b.total_weight());
  sim::Rng ra(77), rb(77);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t rank = a.next(ra);
    EXPECT_EQ(rank, b.next(rb));
    ASSERT_LT(rank, 512u);
  }
}

TEST(Zipf, ExtremeSkewKeepsEveryRankReachable) {
  // The weight floor (q >= 1) guarantees nonzero mass even when the
  // double-precision tail underflows the 2^-32 quantum.
  const sim::ZipfRng z(256, 8.0);
  for (std::uint64_t k = 0; k < 256; ++k) EXPECT_GT(z.mass(k), 0.0);
  EXPECT_GT(z.mass(0), 0.99);  // theta=8: essentially all mass on rank 0
}

TEST(Rng, DeterministicAndRoughlyUniform) {
  sim::Rng r(42);
  sim::Rng r2(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.next(), r2.next());
  int buckets[10] = {0};
  sim::Rng r3(7);
  for (int i = 0; i < 100000; ++i) buckets[r3.below(10)]++;
  for (int b : buckets) {
    EXPECT_GT(b, 8000);
    EXPECT_LT(b, 12000);
  }
}

}  // namespace
}  // namespace rtle
