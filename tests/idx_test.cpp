// rtle::idx — ordered transactional index (TxBTree) + gap table.
//
// Coverage:
//   * TxBTree has plain ordered-map semantics against a std::map mirror,
//     through the transactional API and the meta helpers alike;
//   * proactive split-on-descent keeps the structural invariants across
//     ascending, descending and random insertion orders;
//   * scan() visits [lo, hi] in ascending key order, honors the limit, and
//     reads values through the stored value-word addresses;
//   * erase never unlinks nodes — underfull leaves stay in the chain and
//     later inserts refill them in place;
//   * GapTable: writers wait out overlapping scan footprints (and only
//     overlapping ones), scans wait out writer intent, and the seeded
//     skip-protection mode lets a writer straight through.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bench_util/setbench.h"
#include "idx/btree.h"
#include "idx/gap.h"
#include "mem/shim.h"
#include "sim/env.h"
#include "sim/rng.h"
#include "test_util.h"

namespace rtle {
namespace {

using idx::GapTable;
using idx::TxBTree;
using runtime::ThreadCtx;
using runtime::TxContext;
using sim::MachineConfig;

/// Run `fn(ctx)` once inside a critical section of a fresh Lock method —
/// the simplest way to hand the tree a live TxContext.
template <typename Fn>
void in_cs(SimScope& sim, runtime::SyncMethod& m, ThreadCtx& th, Fn&& fn) {
  sim.sched.spawn(
      [&] {
        auto cs = [&](TxContext& ctx) { fn(ctx); };
        m.execute(th, cs);
      },
      th.tid);
  sim.sched.run();
}

TEST(IdxBTree, InsertFindEraseMatchStdMap) {
  SimScope sim(MachineConfig::corei7());
  constexpr std::uint64_t kKeys = 128;
  TxBTree tree(1024, 1);
  std::vector<std::uint64_t> vals(kKeys, 0);
  std::map<std::uint64_t, std::uint64_t*> model;
  auto method = bench::method_by_name("Lock").make();
  method->prepare(1);
  ThreadCtx th(0, 7);
  sim.sched.spawn(
      [&] {
        sim::Rng rng(7);
        for (int i = 0; i < 900; ++i) {
          const std::uint64_t key = rng.below(kKeys);
          tree.reserve_nodes(th, TxBTree::kNodesPerInsert);
          switch (rng.below(3)) {
            case 0: {
              auto cs = [&](TxContext& ctx) {
                tree.insert(ctx, key, &vals[key]);
              };
              method->execute(th, cs);
              model[key] = &vals[key];
              break;
            }
            case 1: {
              std::uint64_t* got = nullptr;
              auto cs = [&](TxContext& ctx) { got = tree.find(ctx, key); };
              method->execute(th, cs);
              if (model.count(key) != 0) {
                EXPECT_EQ(got, model[key]);
              } else {
                EXPECT_EQ(got, nullptr);
              }
              break;
            }
            default: {
              bool erased = false;
              auto cs = [&](TxContext& ctx) { erased = tree.erase(ctx, key); };
              method->execute(th, cs);
              EXPECT_EQ(erased, model.erase(key) != 0);
              break;
            }
          }
        }
      },
      0);
  sim.sched.run();
  EXPECT_TRUE(tree.invariants_ok());
  EXPECT_EQ(tree.size_meta(), model.size());
  auto it = model.begin();
  tree.for_each_meta([&](std::uint64_t k, std::uint64_t* v) {
    ASSERT_NE(it, model.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  });
  EXPECT_EQ(it, model.end());
}

TEST(IdxBTree, SplitsKeepInvariantsInEveryInsertionOrder) {
  for (int order = 0; order < 3; ++order) {
    SimScope sim(MachineConfig::corei7());
    constexpr std::uint64_t kKeys = 300;
    TxBTree tree(2048, 1);
    std::vector<std::uint64_t> vals(kKeys, 0);
    auto method = bench::method_by_name("Lock").make();
    method->prepare(1);
    ThreadCtx th(0, 9);
    sim.sched.spawn(
        [&] {
          sim::Rng rng(11);
          for (std::uint64_t i = 0; i < kKeys; ++i) {
            std::uint64_t key = i;                        // ascending
            if (order == 1) key = kKeys - 1 - i;          // descending
            if (order == 2) key = (i * 2654435761u) % kKeys;  // scattered
            tree.reserve_nodes(th, TxBTree::kNodesPerInsert);
            auto cs = [&](TxContext& ctx) {
              tree.insert(ctx, key, &vals[key]);
            };
            method->execute(th, cs);
          }
        },
        0);
    sim.sched.run();
    EXPECT_TRUE(tree.invariants_ok()) << "order " << order;
    // order 2 visits some keys twice (the map is not a permutation for
    // every modulus) — upserts, so count distinct keys.
    std::map<std::uint64_t, bool> seen;
    tree.for_each_meta([&](std::uint64_t k, std::uint64_t*) {
      seen[k] = true;
    });
    std::uint64_t prev = 0;
    bool first = true;
    tree.for_each_meta([&](std::uint64_t k, std::uint64_t*) {
      if (!first) {
        EXPECT_GT(k, prev) << "order " << order;
      }
      prev = k;
      first = false;
    });
    EXPECT_EQ(tree.size_meta(), seen.size()) << "order " << order;
  }
}

TEST(IdxBTree, ScanVisitsRangeAscendingAndHonorsLimit) {
  SimScope sim(MachineConfig::corei7());
  TxBTree tree(1024, 1);
  std::vector<std::uint64_t> vals(256, 0);
  for (std::uint64_t k = 0; k < 256; k += 2) {  // evens only
    vals[k] = 1000 + k;
    EXPECT_TRUE(tree.insert_meta(k, &vals[k]));
  }
  EXPECT_FALSE(tree.insert_meta(10, &vals[10]));  // duplicate prefill
  auto method = bench::method_by_name("Lock").make();
  method->prepare(1);
  ThreadCtx th(0, 3);
  auto scan_collect = [&](std::uint64_t lo, std::uint64_t hi,
                          std::size_t limit) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
    in_cs(sim, *method, th, [&](TxContext& ctx) {
      got.clear();
      auto fn = [&](std::uint64_t k, std::uint64_t v) {
        got.emplace_back(k, v);
      };
      tree.scan(ctx, lo, hi, limit, fn);
    });
    return got;
  };

  const auto full = scan_collect(0, 255, 0);
  ASSERT_EQ(full.size(), 128u);
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i].first, 2 * i);
    EXPECT_EQ(full[i].second, 1000 + 2 * i);  // value read through the word
  }
  // Interior range with odd (absent) endpoints.
  const auto mid = scan_collect(11, 21, 0);
  ASSERT_EQ(mid.size(), 5u);
  EXPECT_EQ(mid.front().first, 12u);
  EXPECT_EQ(mid.back().first, 20u);
  // Limit keeps the lowest keys.
  const auto lim = scan_collect(0, 255, 7);
  ASSERT_EQ(lim.size(), 7u);
  EXPECT_EQ(lim.back().first, 12u);
  // Empty range.
  EXPECT_TRUE(scan_collect(13, 13, 0).empty());
  EXPECT_TRUE(scan_collect(300, 400, 0).empty());
}

TEST(IdxBTree, EraseLeavesChainLinkedAndRefillableInPlace) {
  SimScope sim(MachineConfig::corei7());
  constexpr std::uint64_t kKeys = 200;
  TxBTree tree(1024, 1);
  std::vector<std::uint64_t> vals(kKeys, 0);
  auto method = bench::method_by_name("Lock").make();
  method->prepare(1);
  ThreadCtx th(0, 5);
  sim.sched.spawn(
      [&] {
        for (std::uint64_t k = 0; k < kKeys; ++k) {
          tree.reserve_nodes(th, TxBTree::kNodesPerInsert);
          auto cs = [&](TxContext& ctx) { tree.insert(ctx, k, &vals[k]); };
          method->execute(th, cs);
        }
        // Empty every leaf; the nodes stay linked where they are.
        for (std::uint64_t k = 0; k < kKeys; ++k) {
          auto cs = [&](TxContext& ctx) {
            EXPECT_TRUE(tree.erase(ctx, k));
            EXPECT_FALSE(tree.erase(ctx, k));
          };
          method->execute(th, cs);
        }
      },
      0);
  sim.sched.run();
  EXPECT_EQ(tree.size_meta(), 0u);
  EXPECT_TRUE(tree.invariants_ok());
  // Refill the same key range: the emptied leaves absorb the inserts
  // without growing the structure out of its arena.
  sim.sched.spawn(
      [&] {
        for (std::uint64_t k = 0; k < kKeys; ++k) {
          tree.reserve_nodes(th, TxBTree::kNodesPerInsert);
          auto cs = [&](TxContext& ctx) { tree.insert(ctx, k, &vals[k]); };
          method->execute(th, cs);
        }
      },
      0);
  sim.sched.run();
  EXPECT_EQ(tree.size_meta(), kKeys);
  EXPECT_TRUE(tree.invariants_ok());
}

// ---------------------------------------------------------------------------
// GapTable: range-footprint protection for pessimistic scans.
// ---------------------------------------------------------------------------

TEST(IdxGap, WriterWaitsForOverlappingScanFootprint) {
  SimScope sim(MachineConfig::corei7());
  GapTable gaps(2);
  std::vector<std::string> events;  // host-side: append order = sim order
  ThreadCtx t0(0, 1), t1(1, 2);
  sim.sched.spawn(
      [&] {
        gaps.scan_enter(t0, 10, 20);
        events.push_back("scan_enter");
        EXPECT_EQ(gaps.active_scans(), 1u);
        mem::compute(2000);  // hold the footprint while the writer arrives
        gaps.scan_leave(t0);
        events.push_back("scan_leave");
      },
      0);
  sim.sched.spawn(
      [&] {
        mem::compute(50);  // let the scan publish first
        gaps.writer_enter(t1, 15, 15, /*honor=*/true);
        events.push_back("writer_in");
        gaps.writer_leave(t1);
      },
      1);
  sim.sched.run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], "scan_enter");
  EXPECT_EQ(events[1], "scan_leave");
  EXPECT_EQ(events[2], "writer_in");  // waited the footprint out
  EXPECT_EQ(gaps.active_scans(), 0u);
}

TEST(IdxGap, DisjointWriterPassesWhileScanIsLive) {
  SimScope sim(MachineConfig::corei7());
  GapTable gaps(2);
  std::vector<std::string> events;
  ThreadCtx t0(0, 1), t1(1, 2);
  sim.sched.spawn(
      [&] {
        gaps.scan_enter(t0, 10, 20);
        events.push_back("scan_enter");
        mem::compute(2000);
        gaps.scan_leave(t0);
        events.push_back("scan_leave");
      },
      0);
  sim.sched.spawn(
      [&] {
        mem::compute(50);
        gaps.writer_enter(t1, 30, 40, /*honor=*/true);  // disjoint range
        events.push_back("writer_in");
        gaps.writer_leave(t1);
      },
      1);
  sim.sched.run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1], "writer_in");  // did not wait for the scan
}

TEST(IdxGap, ScanWaitsForPublishedWriterIntent) {
  SimScope sim(MachineConfig::corei7());
  GapTable gaps(2);
  std::vector<std::string> events;
  ThreadCtx t0(0, 1), t1(1, 2);
  sim.sched.spawn(
      [&] {
        gaps.writer_enter(t0, 12, 18, /*honor=*/true);
        events.push_back("writer_enter");
        mem::compute(2000);
        gaps.writer_leave(t0);
        events.push_back("writer_leave");
      },
      0);
  sim.sched.spawn(
      [&] {
        mem::compute(50);
        gaps.scan_enter(t1, 10, 20);
        events.push_back("scan_in");
        gaps.scan_leave(t1);
      },
      1);
  sim.sched.run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1], "writer_leave");
  EXPECT_EQ(events[2], "scan_in");  // waited the intent out
}

TEST(IdxGap, SkippedProtectionLetsTheWriterStraightThrough) {
  SimScope sim(MachineConfig::corei7());
  GapTable gaps(2);
  std::vector<std::string> events;
  ThreadCtx t0(0, 1), t1(1, 2);
  sim.sched.spawn(
      [&] {
        gaps.scan_enter(t0, 10, 20);
        events.push_back("scan_enter");
        mem::compute(2000);
        gaps.scan_leave(t0);
        events.push_back("scan_leave");
      },
      0);
  sim.sched.spawn(
      [&] {
        mem::compute(50);
        gaps.writer_enter(t1, 15, 15, /*honor=*/false);  // seeded bug
        events.push_back("writer_in");
        gaps.writer_leave(t1);
      },
      1);
  sim.sched.run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1], "writer_in");  // entered the live footprint
}

}  // namespace
}  // namespace rtle
