// AVL set: sequential correctness against std::set, invariant preservation,
// write-minimality properties the paper's algorithms rely on, and abort
// rollback of in-flight structural changes.
#include <gtest/gtest.h>

#include <set>

#include "ds/avl.h"
#include "htm/htm.h"
#include "sim/env.h"
#include "sim/rng.h"

namespace rtle {
namespace {

using ds::AvlSet;
using runtime::Path;
using runtime::ThreadCtx;
using runtime::TxContext;
using sim::MachineConfig;

// Run `body` on a single simulated thread with a raw (uninstrumented,
// non-speculative) context.
void run_raw(SimScope& sim, const std::function<void(TxContext&)>& body) {
  ThreadCtx th(0, 42);
  sim.sched.spawn(
      [&] {
        TxContext ctx(Path::kRaw, th);
        body(ctx);
      },
      0);
  sim.sched.run();
}

TEST(Avl, InsertFindRemoveBasic) {
  SimScope sim(MachineConfig::corei7());
  AvlSet set(1024, 1);
  run_raw(sim, [&](TxContext& ctx) {
    set.reserve_nodes(ctx.thread(), 16);
    EXPECT_FALSE(set.contains(ctx, 5));
    EXPECT_TRUE(set.insert(ctx, 5));
    EXPECT_FALSE(set.insert(ctx, 5));  // duplicate: no-op
    EXPECT_TRUE(set.contains(ctx, 5));
    EXPECT_TRUE(set.remove(ctx, 5));
    EXPECT_FALSE(set.remove(ctx, 5));
    EXPECT_FALSE(set.contains(ctx, 5));
  });
  EXPECT_TRUE(set.invariants_ok());
  EXPECT_EQ(set.size_meta(), 0u);
}

TEST(Avl, AscendingInsertStaysBalanced) {
  SimScope sim(MachineConfig::corei7());
  AvlSet set(2048, 1);
  run_raw(sim, [&](TxContext& ctx) {
    for (std::uint64_t k = 0; k < 1000; ++k) {
      set.reserve_nodes(ctx.thread(), 2);
      ASSERT_TRUE(set.insert(ctx, k));
    }
  });
  EXPECT_TRUE(set.invariants_ok());
  EXPECT_EQ(set.size_meta(), 1000u);
}

TEST(Avl, RandomOpsMatchStdSet) {
  SimScope sim(MachineConfig::corei7());
  AvlSet set(4096, 1);
  std::set<std::uint64_t> ref;
  sim::Rng rng(7);
  run_raw(sim, [&](TxContext& ctx) {
    for (int i = 0; i < 6000; ++i) {
      set.reserve_nodes(ctx.thread(), 2);
      const std::uint64_t key = rng.below(512);
      switch (rng.below(3)) {
        case 0:
          EXPECT_EQ(set.insert(ctx, key), ref.insert(key).second);
          break;
        case 1:
          EXPECT_EQ(set.remove(ctx, key), ref.erase(key) > 0);
          break;
        default:
          EXPECT_EQ(set.contains(ctx, key), ref.count(key) > 0);
      }
    }
  });
  EXPECT_TRUE(set.invariants_ok());
  EXPECT_EQ(set.size_meta(), ref.size());
}

TEST(Avl, MetaPrefillMatchesTransactionalView) {
  SimScope sim(MachineConfig::corei7());
  AvlSet set(4096, 1);
  for (std::uint64_t k = 0; k < 2000; k += 2) set.insert_meta(k);
  EXPECT_TRUE(set.invariants_ok());
  EXPECT_EQ(set.size_meta(), 1000u);
  run_raw(sim, [&](TxContext& ctx) {
    EXPECT_TRUE(set.contains(ctx, 0));
    EXPECT_FALSE(set.contains(ctx, 1));
    EXPECT_TRUE(set.contains(ctx, 1998));
  });
}

TEST(Avl, AbortedTransactionRollsBackStructure) {
  SimScope sim(MachineConfig::corei7());
  AvlSet set(1024, 1);
  for (std::uint64_t k = 0; k < 100; ++k) set.insert_meta(k * 2);
  const std::size_t before = set.size_meta();

  ThreadCtx th(0, 1);
  sim.sched.spawn(
      [&] {
        set.reserve_nodes(th, 8);
        auto& htm = cur_htm();
        htm.begin(th.tx);
        try {
          TxContext ctx(Path::kHtmFast, th);
          ASSERT_TRUE(set.insert(ctx, 31));
          ASSERT_TRUE(set.remove(ctx, 40));
          htm.abort_self(th.tx, htm::AbortCause::kExplicit);
        } catch (const htm::HtmAbort&) {
        }
      },
      0);
  sim.sched.run();

  EXPECT_TRUE(set.invariants_ok());
  EXPECT_EQ(set.size_meta(), before);  // both mutations undone
}

TEST(Avl, DuplicateInsertPerformsNoWrites) {
  // The paper leans on this: Insert of a present key is read-only, so it can
  // commit on the RW-TLE slow path. Verify via the HTM write-set: run the
  // duplicate insert in a transaction and check it wrote nothing by making a
  // plain reader NOT doom it.
  SimScope sim(MachineConfig::corei7());
  AvlSet set(1024, 1);
  for (std::uint64_t k = 0; k < 64; ++k) set.insert_meta(k);
  bool committed = false;
  ThreadCtx th(0, 1);
  sim.sched.spawn(
      [&] {
        set.reserve_nodes(th, 8);
        auto& htm = cur_htm();
        htm.begin(th.tx);
        try {
          TxContext ctx(Path::kHtmFast, th);
          EXPECT_FALSE(set.insert(ctx, 32));  // present
          htm.commit(th.tx);
          committed = true;
        } catch (const htm::HtmAbort&) {
        }
      },
      0);
  sim.sched.run();
  EXPECT_TRUE(committed);
  EXPECT_TRUE(set.invariants_ok());
}

TEST(Avl, FreeListRecyclesNodes) {
  SimScope sim(MachineConfig::corei7());
  AvlSet set(256, 1);  // deliberately small arena
  run_raw(sim, [&](TxContext& ctx) {
    // Insert/remove far more times than the arena holds: recycling must work.
    for (int round = 0; round < 50; ++round) {
      for (std::uint64_t k = 0; k < 64; ++k) {
        set.reserve_nodes(ctx.thread(), 2);
        ASSERT_TRUE(set.insert(ctx, k));
      }
      for (std::uint64_t k = 0; k < 64; ++k) {
        ASSERT_TRUE(set.remove(ctx, k));
      }
    }
  });
  EXPECT_EQ(set.size_meta(), 0u);
  EXPECT_LE(set.arena_used_meta(), 256u);
}

}  // namespace
}  // namespace rtle
