// NOrec / RHNOrec specifics: read-own-writes, value-based validation,
// commit-path selection, opacity, and the commit-lock fallback.
#include <gtest/gtest.h>

#include <memory>

#include "sim/env.h"
#include "stm/norec.h"
#include "stm/rhnorec.h"
#include "test_util.h"

namespace rtle {
namespace {

using runtime::ThreadCtx;
using runtime::TxContext;
using sim::MachineConfig;

struct Cell {
  alignas(64) std::uint64_t a = 0;
  alignas(64) std::uint64_t b = 0;
};

TEST(NOrec, ReadsOwnWrites) {
  SimScope sim(MachineConfig::corei7());
  stm::NOrecMethod m;
  m.prepare(1);
  Cell d;
  std::uint64_t observed = 0;
  test::run_workers(sim, 1, 1, 1, [&](ThreadCtx& th, std::uint64_t) {
    auto cs = [&](TxContext& ctx) {
      ctx.store(&d.a, std::uint64_t{7});
      observed = ctx.load(&d.a);  // must see the buffered write
      ctx.store(&d.a, std::uint64_t{9});
    };
    m.execute(th, cs);
  });
  EXPECT_EQ(observed, 7u);
  EXPECT_EQ(d.a, 9u);  // redo log applied at commit
}

TEST(NOrec, ReadOnlyTransactionCommitsWithoutClockBump) {
  SimScope sim(MachineConfig::corei7());
  stm::NOrecMethod m;
  m.prepare(2);
  Cell d;
  d.a = 5;
  test::run_workers(sim, 2, 50, 2, [&](ThreadCtx& th, std::uint64_t) {
    auto cs = [&](TxContext& ctx) { (void)ctx.load(&d.a); };
    m.execute(th, cs);
  });
  EXPECT_EQ(m.stats().commit_stm_ro, 100u);
  EXPECT_EQ(m.stats().commit_stm_lock, 0u);
  EXPECT_EQ(m.stats().validations, 0u);  // clock never moved
}

TEST(NOrec, WriterCommitsForceReadersToValidate) {
  SimScope sim(MachineConfig::corei7());
  stm::NOrecMethod m;
  m.prepare(4);
  Cell d;
  test::run_workers(sim, 4, 100, 3, [&](ThreadCtx& th, std::uint64_t) {
    if (th.tid == 0) {
      auto cs = [&](TxContext& ctx) {
        ctx.store(&d.a, ctx.load(&d.a) + 1);
      };
      m.execute(th, cs);
    } else {
      auto cs = [&](TxContext& ctx) {
        (void)ctx.load(&d.a);
        ctx.compute(200);  // stay open across writer commits
        (void)ctx.load(&d.b);
      };
      m.execute(th, cs);
    }
  });
  EXPECT_EQ(d.a, 100u);
  EXPECT_GT(m.stats().validations, 0u);
}

TEST(NOrec, ConflictingWritersNeverLoseUpdates) {
  SimScope sim(MachineConfig::xeon());
  stm::NOrecMethod m;
  m.prepare(8);
  Cell d;
  test::run_workers(sim, 8, 200, 4, [&](ThreadCtx& th, std::uint64_t) {
    auto cs = [&](TxContext& ctx) {
      const std::uint64_t v = ctx.load(&d.a);
      ctx.compute(30);
      ctx.store(&d.a, v + 1);
    };
    m.execute(th, cs);
  });
  EXPECT_EQ(d.a, 8u * 200u);
}

TEST(RHNOrec, UncontendedOpsCommitInHardware) {
  SimScope sim(MachineConfig::corei7());
  stm::RHNOrecMethod m;
  m.prepare(1);
  Cell d;
  test::run_workers(sim, 1, 100, 5, [&](ThreadCtx& th, std::uint64_t) {
    auto cs = [&](TxContext& ctx) { ctx.store(&d.a, ctx.load(&d.a) + 1); };
    m.execute(th, cs);
  });
  EXPECT_EQ(d.a, 100u);
  // Without software transactions running, all commits take the pure-HTM
  // fast path without bumping the timestamp.
  EXPECT_EQ(m.stats().rhn_htm_fast, 100u);
  EXPECT_EQ(m.stats().rhn_htm_slow, 0u);
}

TEST(RHNOrec, UnfriendlyOpsFallToSoftwarePath) {
  SimScope sim(MachineConfig::corei7());
  stm::RHNOrecMethod m;
  m.prepare(1);
  Cell d;
  test::run_workers(sim, 1, 50, 6, [&](ThreadCtx& th, std::uint64_t) {
    auto cs = [&](TxContext& ctx) {
      ctx.store(&d.a, ctx.load(&d.a) + 1);
      ctx.htm_unfriendly();  // kills every hardware attempt
    };
    m.execute(th, cs);
  });
  EXPECT_EQ(d.a, 50u);
  EXPECT_EQ(m.stats().rhn_htm_fast + m.stats().rhn_htm_slow, 0u);
  EXPECT_EQ(m.stats().commit_stm_htm + m.stats().commit_stm_lock, 50u);
}

TEST(RHNOrec, MixedHardwareSoftwareConserveAtomicity) {
  SimScope sim(MachineConfig::xeon());
  stm::RHNOrecMethod m;
  m.prepare(8);
  Cell d;
  test::run_workers(sim, 8, 150, 7, [&](ThreadCtx& th, std::uint64_t) {
    auto cs = [&](TxContext& ctx) {
      const std::uint64_t v = ctx.load(&d.a);
      ctx.compute(25);
      ctx.store(&d.a, v + 1);
      if (th.tid == 0) ctx.htm_unfriendly();  // one thread always software
    };
    m.execute(th, cs);
  });
  EXPECT_EQ(d.a, 8u * 150u);
  EXPECT_GT(m.stats().commit_stm_htm + m.stats().commit_stm_lock +
                m.stats().commit_stm_ro,
            0u);
}

TEST(RHNOrec, TimestampBumpedOnlyWhileSoftwareRunning) {
  // With a software transaction permanently alive (unfriendly thread), HTM
  // commits must take the slow (timestamp-bumping) commit.
  SimScope sim(MachineConfig::xeon());
  stm::RHNOrecMethod m;
  m.prepare(4);
  Cell d;
  Cell other;
  test::run_workers(sim, 4, 100, 8, [&](ThreadCtx& th, std::uint64_t) {
    if (th.tid == 0) {
      auto cs = [&](TxContext& ctx) {
        ctx.store(&d.a, ctx.load(&d.a) + 1);
        ctx.compute(300);  // long software transaction
        ctx.htm_unfriendly();
      };
      m.execute(th, cs);
    } else {
      auto cs = [&](TxContext& ctx) {
        ctx.store(&other.a, ctx.load(&other.a) + 1);
      };
      m.execute(th, cs);
    }
  });
  EXPECT_EQ(d.a, 100u);
  EXPECT_EQ(other.a, 300u);
  EXPECT_GT(m.stats().rhn_htm_slow, 0u);
  EXPECT_GT(m.stats().cycles_sw_running, 0u);
}

TEST(NOrec, OpacityUnderTornUpdates) {
  // Two words updated together must never be observed unequal, even by
  // transactions that subsequently abort.
  SimScope sim(MachineConfig::xeon());
  stm::NOrecMethod m;
  m.prepare(6);
  Cell d;
  std::uint64_t violations = 0;
  test::run_workers(sim, 6, 150, 9, [&](ThreadCtx& th, std::uint64_t) {
    if (th.tid % 2 == 0) {
      auto cs = [&](TxContext& ctx) {
        const std::uint64_t a = ctx.load(&d.a);
        ctx.compute(40);
        const std::uint64_t b = ctx.load(&d.b);
        if (a != b) violations += 1;
      };
      m.execute(th, cs);
    } else {
      auto cs = [&](TxContext& ctx) {
        ctx.store(&d.a, ctx.load(&d.a) + 1);
        ctx.store(&d.b, ctx.load(&d.b) + 1);
      };
      m.execute(th, cs);
    }
  });
  EXPECT_EQ(violations, 0u);
  EXPECT_EQ(d.a, d.b);
}

}  // namespace
}  // namespace rtle
