// Second HTM test wave: fused store+commit, spurious aborts, self-exclusion
// in plain-access hooks, many-transaction stress, and scheduler stress.
#include <gtest/gtest.h>

#include <vector>

#include "htm/htm.h"
#include "mem/shim.h"
#include "sim/env.h"
#include "test_util.h"

namespace rtle {
namespace {

using htm::AbortCause;
using htm::HtmAbort;
using htm::Tx;
using sim::MachineConfig;

TEST(HtmFused, StoreAndCommitPublishesAtomically) {
  SimScope s(MachineConfig::corei7());
  alignas(64) std::uint64_t word = 0;
  s.sched.spawn(
      [&] {
        Tx tx(0);
        s.htm.begin(tx);
        s.htm.tx_store_and_commit(tx, &word, 5);
        EXPECT_FALSE(tx.live());
      },
      0);
  s.sched.run();
  EXPECT_EQ(word, 5u);
}

TEST(HtmFused, SurvivesConcurrentPolling) {
  // A reader polls `clock` every few cycles; a writer repeatedly bumps it
  // with the fused commit. Unlike store-then-commit, the fused form leaves
  // no window, so the writer must make steady progress.
  SimScope s(MachineConfig::corei7());
  alignas(64) std::uint64_t clock = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  s.sched.spawn(
      [&] {
        Tx tx(0);
        for (int i = 0; i < 200; ++i) {
          try {
            s.htm.begin(tx);
            const std::uint64_t t = s.htm.tx_load(tx, &clock);
            s.sched.advance(30);
            s.htm.tx_store_and_commit(tx, &clock, t + 1);
            ++commits;
          } catch (const HtmAbort&) {
            ++aborts;
          }
        }
      },
      0);
  s.sched.spawn(
      [&] {
        for (int i = 0; i < 2000; ++i) {
          (void)mem::plain_load(&clock);
          s.sched.advance(5);
        }
      },
      1);
  s.sched.run();
  EXPECT_GT(commits, 150u);  // the fused window loses only the load race
  EXPECT_EQ(clock, commits);
}

TEST(HtmFused, DoomedTransactionStillAborts) {
  SimScope s(MachineConfig::corei7());
  alignas(64) std::uint64_t a = 0;
  alignas(64) std::uint64_t b = 0;
  bool aborted = false;
  s.sched.spawn(
      [&] {
        Tx tx(0);
        s.htm.begin(tx);
        try {
          (void)s.htm.tx_load(tx, &a);
          s.sched.advance(100000);  // plenty of time to get doomed
          s.htm.tx_store_and_commit(tx, &b, 1);
        } catch (const HtmAbort&) {
          aborted = true;
        }
      },
      0);
  s.sched.spawn(
      [&] {
        s.sched.advance(500);
        mem::plain_store(&a, 9);
      },
      1);
  s.sched.run();
  EXPECT_TRUE(aborted);
  EXPECT_EQ(b, 0u);
}

TEST(HtmSpurious, ConfiguredRateProducesSpuriousAborts) {
  auto mc = MachineConfig::corei7();
  mc.htm.spurious_every = 50;  // aggressive for the test
  SimScope s(mc);
  alignas(64) std::uint64_t data[32];
  std::uint64_t spurious = 0;
  s.sched.spawn(
      [&] {
        Tx tx(0);
        for (int i = 0; i < 500; ++i) {
          try {
            s.htm.begin(tx);
            for (int j = 0; j < 8; ++j) (void)s.htm.tx_load(tx, &data[j]);
            s.htm.commit(tx);
          } catch (const HtmAbort& e) {
            if (e.cause == AbortCause::kSpurious) ++spurious;
          }
        }
      },
      0);
  s.sched.run();
  EXPECT_GT(spurious, 10u);
}

TEST(HtmSpurious, ZeroRateNeverAborts) {
  auto mc = MachineConfig::corei7();
  mc.htm.spurious_every = 0;
  SimScope s(mc);
  alignas(64) std::uint64_t data[8];
  std::uint64_t aborts = 0;
  s.sched.spawn(
      [&] {
        Tx tx(0);
        for (int i = 0; i < 2000; ++i) {
          try {
            s.htm.begin(tx);
            (void)s.htm.tx_load(tx, &data[0]);
            s.htm.commit(tx);
          } catch (const HtmAbort&) {
            ++aborts;
          }
        }
      },
      0);
  s.sched.run();
  EXPECT_EQ(aborts, 0u);
}

TEST(HtmPlainHooks, SelfExclusionPreventsSelfDooming) {
  // A thread with a live transaction performing a transaction-pure plain
  // access to a line in its own footprint must not doom itself when it
  // passes its own id.
  SimScope s(MachineConfig::corei7());
  alignas(64) std::uint64_t word = 0;
  bool committed = false;
  s.sched.spawn(
      [&] {
        Tx tx(3);
        s.htm.begin(tx);
        try {
          s.htm.tx_store(tx, &word, 1);
          mem::plain_faa(&word, 0, /*self_tx=*/3);  // e.g. allocator metadata
          s.htm.commit(tx);
          committed = true;
        } catch (const HtmAbort&) {
        }
      },
      0);
  s.sched.run();
  EXPECT_TRUE(committed);
}

TEST(HtmStress, ManyThreadsRandomConflictsStayConsistent) {
  // 16 transactional threads hammering 8 counters; after the dust settles
  // the sum of the counters equals the number of committed increments.
  SimScope s(MachineConfig::xeon());
  struct Padded {
    alignas(64) std::uint64_t v = 0;
  };
  static Padded counters[8];
  for (auto& c : counters) c.v = 0;
  std::uint64_t committed = 0;
  for (std::uint32_t t = 0; t < 16; ++t) {
    s.sched.spawn(
        [&, t] {
          sim::Rng rng(500 + t);
          Tx tx(t);
          for (int i = 0; i < 300; ++i) {
            const std::size_t idx = rng.below(8);
            try {
              s.htm.begin(tx);
              const std::uint64_t v = s.htm.tx_load(tx, &counters[idx].v);
              s.sched.advance(10);
              s.htm.tx_store(tx, &counters[idx].v, v + 1);
              s.htm.commit(tx);
              ++committed;
            } catch (const HtmAbort&) {
            }
          }
        },
        t);
  }
  s.sched.run();
  std::uint64_t sum = 0;
  for (const auto& c : counters) sum += c.v;
  EXPECT_EQ(sum, committed);
  // 16 threads on 8 counters is brutal; roughly half the attempts lose.
  EXPECT_GT(committed, 1000u);
}

TEST(SchedulerStress, SixtyFibersInterleaveAndFinish) {
  SimScope s(MachineConfig::xeon());
  std::uint64_t total = 0;
  for (std::uint32_t t = 0; t < 60; ++t) {
    s.sched.spawn(
        [&, t] {
          sim::Rng rng(t);
          for (int i = 0; i < 200; ++i) {
            s.sched.advance(1 + rng.below(30));
            total += 1;
          }
        },
        t % 36);
  }
  s.sched.run();
  EXPECT_EQ(total, 60u * 200u);
}

}  // namespace
}  // namespace rtle
