// Skip-list set: reference-model properties, invariants, deterministic
// heights, abort rollback, and cross-method concurrent linearization.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "bench_util/setbench.h"
#include "ds/skiplist.h"
#include "htm/htm.h"
#include "sim/env.h"
#include "sim/rng.h"
#include "test_util.h"

namespace rtle {
namespace {

using ds::SkipListSet;
using runtime::Path;
using runtime::ThreadCtx;
using runtime::TxContext;
using sim::MachineConfig;

void run_raw(SimScope& sim, const std::function<void(TxContext&)>& body) {
  ThreadCtx th(0, 11);
  sim.sched.spawn(
      [&] {
        TxContext ctx(Path::kRaw, th);
        body(ctx);
      },
      0);
  sim.sched.run();
}

TEST(SkipList, BasicInsertFindRemove) {
  SimScope sim(MachineConfig::corei7());
  SkipListSet set(256, 1);
  run_raw(sim, [&](TxContext& ctx) {
    set.reserve_nodes(ctx.thread(), 8);
    EXPECT_FALSE(set.contains(ctx, 10));
    EXPECT_TRUE(set.insert(ctx, 10));
    EXPECT_FALSE(set.insert(ctx, 10));
    EXPECT_TRUE(set.contains(ctx, 10));
    EXPECT_TRUE(set.remove(ctx, 10));
    EXPECT_FALSE(set.remove(ctx, 10));
  });
  EXPECT_TRUE(set.invariants_ok());
  EXPECT_EQ(set.size_meta(), 0u);
}

TEST(SkipList, RandomOpsMatchStdSet) {
  SimScope sim(MachineConfig::corei7());
  SkipListSet set(2048, 1);
  std::set<std::uint64_t> ref;
  sim::Rng rng(17);
  run_raw(sim, [&](TxContext& ctx) {
    for (int i = 0; i < 6000; ++i) {
      set.reserve_nodes(ctx.thread(), 2);
      const std::uint64_t key = rng.below(400);
      switch (rng.below(3)) {
        case 0:
          EXPECT_EQ(set.insert(ctx, key), ref.insert(key).second);
          break;
        case 1:
          EXPECT_EQ(set.remove(ctx, key), ref.erase(key) > 0);
          break;
        default:
          EXPECT_EQ(set.contains(ctx, key), ref.count(key) > 0);
      }
    }
  });
  EXPECT_TRUE(set.invariants_ok());
  EXPECT_EQ(set.size_meta(), ref.size());
}

TEST(SkipList, HeightsAreDeterministicAndGeometric) {
  int histogram[SkipListSet::kMaxLevel + 1] = {};
  for (std::uint64_t k = 0; k < 100000; ++k) {
    const int h = SkipListSet::height_of_key(k);
    ASSERT_GE(h, 1);
    ASSERT_LE(h, SkipListSet::kMaxLevel);
    ASSERT_EQ(h, SkipListSet::height_of_key(k));  // deterministic
    histogram[h] += 1;
  }
  // Roughly half the mass at level 1, a quarter at level 2, ...
  EXPECT_NEAR(histogram[1] / 100000.0, 0.5, 0.05);
  EXPECT_NEAR(histogram[2] / 100000.0, 0.25, 0.04);
}

TEST(SkipList, AbortRollsBackInsertAndRemove) {
  SimScope sim(MachineConfig::corei7());
  SkipListSet set(256, 1);
  ThreadCtx th(0, 3);
  sim.sched.spawn(
      [&] {
        set.reserve_nodes(th, 32);
        {
          TxContext ctx(Path::kRaw, th);
          for (std::uint64_t k = 0; k < 20; ++k) set.insert(ctx, k * 3);
        }
        auto& htm = cur_htm();
        htm.begin(th.tx);
        try {
          TxContext ctx(Path::kHtmFast, th);
          EXPECT_TRUE(set.insert(ctx, 100));
          EXPECT_TRUE(set.remove(ctx, 9));
          htm.abort_self(th.tx, htm::AbortCause::kExplicit);
        } catch (const htm::HtmAbort&) {
        }
      },
      0);
  sim.sched.run();
  EXPECT_TRUE(set.invariants_ok());
  EXPECT_EQ(set.size_meta(), 20u);
}

class SkipListMethodTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SkipListMethodTest, ConcurrentHistoryIsConsistent) {
  constexpr std::uint32_t kThreads = 8;
  constexpr std::uint64_t kOps = 200;
  constexpr std::uint64_t kRange = 128;
  SimScope sim(MachineConfig::xeon());
  SkipListSet set(kRange + 64 * kThreads + 64, kThreads);
  auto method = bench::method_by_name(GetParam()).make();
  method->prepare(kThreads);

  std::vector<std::int64_t> delta(kRange, 0);
  test::run_workers(
      sim, kThreads, kOps, /*seed=*/57,
      [&](ThreadCtx& th, std::uint64_t) {
        set.reserve_nodes(th, 2);
        const std::uint64_t key = th.rng.below(kRange);
        const std::uint32_t r = th.rng.below(100);
        if (r < 35) {
          bool ok = false;
          auto cs = [&](TxContext& ctx) { ok = set.insert(ctx, key); };
          method->execute(th, cs);
          if (ok) delta[key] += 1;
        } else if (r < 70) {
          bool ok = false;
          auto cs = [&](TxContext& ctx) { ok = set.remove(ctx, key); };
          method->execute(th, cs);
          if (ok) delta[key] -= 1;
        } else {
          auto cs = [&](TxContext& ctx) { set.contains(ctx, key); };
          method->execute(th, cs);
        }
      });

  ASSERT_TRUE(set.invariants_ok());
  std::size_t expect = 0;
  for (std::uint64_t k = 0; k < kRange; ++k) {
    ASSERT_GE(delta[k], -1);
    ASSERT_LE(delta[k], 1);
    expect += delta[k] == 1 ? 1 : 0;
  }
  EXPECT_EQ(set.size_meta(), expect);
}

INSTANTIATE_TEST_SUITE_P(Methods, SkipListMethodTest,
                         ::testing::Values("Lock", "TLE", "RW-TLE",
                                           "FG-TLE(1)", "FG-TLE(1024)",
                                           "NOrec", "RHNOrec"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string n = i.param;
                           for (char& c : n) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

}  // namespace
}  // namespace rtle
