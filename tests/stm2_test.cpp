// Second STM test wave: redo-log semantics, forced commit-lock fallback,
// Hybrid NOrec specifics, and SMT/coherence cost-model edges.
#include <gtest/gtest.h>

#include "mem/shim.h"
#include "runtime/engine.h"
#include "sim/env.h"
#include "stm/hybrid_norec.h"
#include "stm/norec.h"
#include "stm/rhnorec.h"
#include "test_util.h"

namespace rtle {
namespace {

using runtime::ThreadCtx;
using runtime::TxContext;
using sim::MachineConfig;

struct Cells {
  alignas(64) std::uint64_t a = 0;
  alignas(64) std::uint64_t b = 0;
};

TEST(NOrecRedoLog, RepeatedWritesToSameWordCollapse) {
  SimScope sim(MachineConfig::corei7());
  stm::NOrecMethod m;
  m.prepare(1);
  Cells d;
  std::uint64_t mid = 0;
  test::run_workers(sim, 1, 1, 41, [&](ThreadCtx& th, std::uint64_t) {
    auto cs = [&](TxContext& ctx) {
      for (std::uint64_t i = 1; i <= 10; ++i) ctx.store(&d.a, i);
      mid = ctx.load(&d.a);
    };
    m.execute(th, cs);
  });
  EXPECT_EQ(mid, 10u);
  EXPECT_EQ(d.a, 10u);  // only the last value lands
}

TEST(NOrecRedoLog, WriteThenReadThenWriteInterleaves) {
  SimScope sim(MachineConfig::corei7());
  stm::NOrecMethod m;
  m.prepare(1);
  Cells d;
  d.b = 100;
  test::run_workers(sim, 1, 1, 42, [&](ThreadCtx& th, std::uint64_t) {
    auto cs = [&](TxContext& ctx) {
      const std::uint64_t b = ctx.load(&d.b);  // committed value
      ctx.store(&d.a, b + 1);
      const std::uint64_t a = ctx.load(&d.a);  // own buffered write
      ctx.store(&d.b, a + 1);
    };
    m.execute(th, cs);
  });
  EXPECT_EQ(d.a, 101u);
  EXPECT_EQ(d.b, 102u);
}

TEST(RHNOrec, CommitLockFallbackStillCommitsCorrectly) {
  // Make the reduced hardware commit impossible (HTM-unsupported action
  // inside the critical section forces software mode; tiny spurious-heavy
  // HTM makes the reduced commits fail too) and verify the global
  // commit-lock path produces correct results.
  auto mc = MachineConfig::corei7();
  mc.htm.spurious_every = 8;  // reduced HTx commits rarely survive
  SimScope sim(mc);
  stm::RHNOrecMethod m;
  m.prepare(4);
  Cells d;
  test::run_workers(sim, 4, 100, 43, [&](ThreadCtx& th, std::uint64_t) {
    auto cs = [&](TxContext& ctx) {
      const std::uint64_t v = ctx.load(&d.a);
      ctx.compute(20);
      ctx.store(&d.a, v + 1);
      ctx.htm_unfriendly();
    };
    m.execute(th, cs);
  });
  EXPECT_EQ(d.a, 400u);
  EXPECT_GT(m.stats().commit_stm_lock, 0u);  // the fallback really ran
}

TEST(HybridNOrec, BumpsClockOnEveryHardwareCommit) {
  SimScope sim(MachineConfig::corei7());
  stm::HybridNOrecMethod m;
  m.prepare(2);
  Cells d;
  // Thread 1 is a software reader (unfriendly); thread 0 commits disjoint
  // writes in hardware. Every hardware commit bumps the clock, so the
  // reader keeps revalidating even though nothing it read ever changes.
  test::run_workers(sim, 2, 80, 44, [&](ThreadCtx& th, std::uint64_t) {
    if (th.tid == 0) {
      auto cs = [&](TxContext& ctx) {
        ctx.compute(250);  // pace the writer across the reader's lifetime
        ctx.store(&d.a, ctx.load(&d.a) + 1);
      };
      m.execute(th, cs);
    } else {
      auto cs = [&](TxContext& ctx) {
        (void)ctx.load(&d.b);
        ctx.compute(150);
        (void)ctx.load(&d.b);
        ctx.htm_unfriendly();  // stay on the software path
      };
      m.execute(th, cs);
    }
  });
  EXPECT_EQ(d.a, 80u);
  EXPECT_GT(m.stats().rhn_htm_slow, 0u);   // clock-bumping HW commits
  EXPECT_GT(m.stats().validations, 10u);   // reader punished for them
}

TEST(HybridNOrec, SoftwarePublicationIsAtomicAgainstHardware) {
  SimScope sim(MachineConfig::xeon());
  stm::HybridNOrecMethod m;
  m.prepare(6);
  Cells d;
  std::uint64_t violations = 0;
  test::run_workers(sim, 6, 120, 45, [&](ThreadCtx& th, std::uint64_t) {
    if (th.tid % 2 == 0) {
      auto cs = [&](TxContext& ctx) {
        const std::uint64_t a = ctx.load(&d.a);
        ctx.compute(30);
        const std::uint64_t b = ctx.load(&d.b);
        if (a != b) violations += 1;
      };
      m.execute(th, cs);
    } else {
      auto cs = [&](TxContext& ctx) {
        ctx.store(&d.a, ctx.load(&d.a) + 1);
        ctx.store(&d.b, ctx.load(&d.b) + 1);
        if (th.tid == 1) ctx.htm_unfriendly();  // one software writer
      };
      m.execute(th, cs);
    }
  });
  EXPECT_EQ(violations, 0u);
  EXPECT_EQ(d.a, d.b);
}

TEST(SmtModel, SiblingSlowsBothHyperthreads) {
  // corei7: pins 0 and 4 share core 0. A fixed amount of work takes
  // smt_penalty_num/den times longer when the sibling is running.
  auto elapsed = [](bool shared) {
    SimScope s(MachineConfig::corei7());
    std::uint64_t t0_end = 0;
    s.sched.spawn(
        [&] {
          for (int i = 0; i < 100; ++i) s.sched.advance(10);
          t0_end = s.sched.now();
        },
        0);
    s.sched.spawn([&] {
      for (int i = 0; i < 100; ++i) s.sched.advance(10);
    },
        shared ? 4 : 1);
    s.sched.run();
    return t0_end;
  };
  const auto& c = MachineConfig::corei7().cost;
  EXPECT_EQ(elapsed(false), 1000u);
  EXPECT_EQ(elapsed(true), 1000u * c.smt_penalty_num / c.smt_penalty_den);
}

TEST(Backoff, LockContentionResolvesWithoutLivelock) {
  // 36 threads fighting for one word through the lock method: the TTS
  // backoff must let everyone through in bounded simulated time.
  SimScope sim(MachineConfig::xeon());
  runtime::LockMethod m;
  m.prepare(36);
  alignas(64) static std::uint64_t word;
  word = 0;
  test::run_workers(sim, 36, 50, 46, [&](ThreadCtx& th, std::uint64_t) {
    auto cs = [&](TxContext& ctx) { ctx.store(&word, ctx.load(&word) + 1); };
    m.execute(th, cs);
  });
  EXPECT_EQ(word, 36u * 50u);
}

}  // namespace
}  // namespace rtle
