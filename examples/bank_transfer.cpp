// Bank transfers under different synchronization methods (the §6.3
// read-modify-write corner case): every critical section writes, so
// RW-TLE's read-only slow path never commits, while FG-TLE keeps
// speculating next to the lock holder. Money is conserved under all of
// them — the invariant the elision machinery must never break.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util/setbench.h"
#include "ds/bank.h"
#include "sim/env.h"

using namespace rtle;

namespace {

void run_method(const char* name) {
  SimScope sim(sim::MachineConfig::xeon());
  constexpr std::uint32_t kThreads = 12;
  constexpr std::uint64_t kOps = 3000;

  ds::BankAccounts bank(256, 10000);
  const std::uint64_t before = bank.total_meta();
  auto method = bench::method_by_name(name).make();
  method->prepare(kThreads);

  std::vector<std::unique_ptr<runtime::ThreadCtx>> threads;
  for (std::uint32_t tid = 0; tid < kThreads; ++tid) {
    threads.push_back(std::make_unique<runtime::ThreadCtx>(tid, 7 + tid));
  }
  for (std::uint32_t tid = 0; tid < kThreads; ++tid) {
    runtime::ThreadCtx* th = threads[tid].get();
    sim.sched.spawn(
        [&, th] {
          for (std::uint64_t i = 0; i < kOps; ++i) {
            const std::size_t from = th->rng.below(bank.size());
            std::size_t to = th->rng.below(bank.size() - 1);
            if (to >= from) ++to;
            const std::uint64_t amount = th->rng.below(100) + 1;
            auto cs = [&](runtime::TxContext& ctx) {
              bank.transfer(ctx, from, to, amount);
            };
            method->execute(*th, cs);
          }
        },
        tid);
  }
  sim.sched.run();

  const auto& s = method->stats();
  const double ms = static_cast<double>(sim.sched.epoch()) /
                    sim.sched.machine().cycles_per_ms();
  std::printf(
      "%-14s %8.0f transfers/ms   fast=%-6llu slow=%-5llu lock=%-5llu "
      "stm=%-5llu conserved=%s\n",
      name, s.ops / ms,
      static_cast<unsigned long long>(s.commit_fast_htm + s.rhn_htm_fast +
                                      s.rhn_htm_slow),
      static_cast<unsigned long long>(s.commit_slow_htm),
      static_cast<unsigned long long>(s.commit_lock),
      static_cast<unsigned long long>(s.commit_stm_ro + s.commit_stm_htm +
                                      s.commit_stm_lock),
      bank.total_meta() == before ? "yes" : "NO (BUG!)");
}

}  // namespace

int main() {
  std::printf("12 simulated threads x 3000 random transfers, 256 padded "
              "accounts:\n\n");
  for (const char* name :
       {"Lock", "TLE", "RW-TLE", "FG-TLE(1)", "FG-TLE(1024)", "A-FG-TLE",
        "NOrec", "RHNOrec"}) {
    run_method(name);
  }
  return 0;
}
