// Quickstart: elide a lock around an AVL-set with refined TLE.
//
// The rtle library simulates a multicore machine with best-effort HTM, so
// this runs anywhere (including single-core CI boxes) and is fully
// deterministic. The recipe:
//
//   1. create a SimScope (the simulated machine),
//   2. pick a SyncMethod (here FG-TLE with 1024 ownership records),
//   3. write critical sections against TxContext,
//   4. spawn simulated threads and run.
//
// As a bonus it installs a trace::TraceSession around the run, exports a
// Chrome trace-event JSON (open it in Perfetto / chrome://tracing) and
// prints the critical-section latency percentiles.
#include <cstdio>
#include <memory>
#include <vector>

#include "ds/avl.h"
#include "sim/env.h"
#include "tle/fgtle.h"
#include "trace/export.h"
#include "trace/session.h"

using namespace rtle;

int main() {
  // Observability: an ambient session records txn/lock/orec events into
  // per-thread ring buffers and folds latency histograms on the fly. It
  // charges zero simulated cycles — delete this line and the run's
  // schedule (and every counter below) stays bit-for-bit identical.
  trace::TraceSession tracer;

  // A single-socket Xeon E5-2699 v3 look-alike (18 cores x 2 SMT).
  SimScope sim(sim::MachineConfig::xeon());

  constexpr std::uint32_t kThreads = 8;
  constexpr std::uint64_t kOpsPerThread = 2000;
  constexpr std::uint64_t kKeyRange = 4096;

  ds::AvlSet set(kKeyRange + 64 * kThreads, kThreads);
  tle::FgTleMethod method(1024);
  method.prepare(kThreads);

  std::vector<std::unique_ptr<runtime::ThreadCtx>> threads;
  for (std::uint32_t tid = 0; tid < kThreads; ++tid) {
    threads.push_back(std::make_unique<runtime::ThreadCtx>(tid, 42 + tid));
  }

  for (std::uint32_t tid = 0; tid < kThreads; ++tid) {
    runtime::ThreadCtx* th = threads[tid].get();
    sim.sched.spawn(
        [&, th] {
          for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
            set.reserve_nodes(*th, 4);  // top up the node cache (outside CS)
            const std::uint64_t key = th->rng.below(kKeyRange);
            const std::uint32_t dice = th->rng.below(100);
            // The critical section: runs uninstrumented in a hardware
            // transaction when possible, instrumented alongside a lock
            // holder when not, pessimistically as a last resort.
            auto cs = [&](runtime::TxContext& ctx) {
              if (dice < 20) {
                set.insert(ctx, key);
              } else if (dice < 40) {
                set.remove(ctx, key);
              } else {
                set.contains(ctx, key);
              }
            };
            method.execute(*th, cs);
          }
        },
        tid);
  }
  sim.sched.run();

  const auto& s = method.stats();
  std::printf("completed %llu critical sections on %u simulated threads\n",
              static_cast<unsigned long long>(s.ops), kThreads);
  std::printf("  fast-path HTM commits : %llu\n",
              static_cast<unsigned long long>(s.commit_fast_htm));
  std::printf("  slow-path HTM commits : %llu (concurrent with the lock)\n",
              static_cast<unsigned long long>(s.commit_slow_htm));
  std::printf("  lock acquisitions     : %llu\n",
              static_cast<unsigned long long>(s.commit_lock));
  std::printf("  aborts                : %llu\n",
              static_cast<unsigned long long>(s.total_aborts()));
  std::printf("  simulated time        : %.3f ms\n",
              static_cast<double>(sim.sched.epoch()) /
                  sim.sched.machine().cycles_per_ms());
  std::printf("final set size %zu, AVL invariants %s\n", set.size_meta(),
              set.invariants_ok() ? "OK" : "BROKEN");

  // Observability: latency percentiles (simulated cycles) and a demo trace.
  std::printf("%s\n", tracer.latency_summary().c_str());
  const char* trace_path = "quickstart_trace.json";
  if (trace::write_chrome_trace(tracer, trace_path)) {
    std::printf("wrote %llu trace events to %s (load it in Perfetto)\n",
                static_cast<unsigned long long>(tracer.total_events() -
                                                tracer.total_drops()),
                trace_path);
  }
  return set.invariants_ok() ? 0 : 1;
}
