// Adaptive FG-TLE (§4.2.1) reacting to workload shifts: the orec array
// grows when lock-held critical sections use most of it, shrinks when they
// don't, and instrumentation switches off entirely when the slow path stops
// paying — then periodically re-probes.
#include <cstdio>
#include <memory>
#include <vector>

#include "ds/avl.h"
#include "sim/env.h"
#include "tle/adaptive.h"

using namespace rtle;

int main() {
  SimScope sim(sim::MachineConfig::xeon());
  constexpr std::uint32_t kThreads = 8;
  constexpr std::uint64_t kKeyRange = 4096;

  ds::AvlSet set(kKeyRange + 64 * kThreads, kThreads);
  tle::AdaptiveFgTle::Policy policy;
  policy.window = 32;
  tle::AdaptiveFgTle method(256, policy);
  method.prepare(kThreads);

  std::vector<std::unique_ptr<runtime::ThreadCtx>> threads;
  for (std::uint32_t tid = 0; tid < kThreads; ++tid) {
    threads.push_back(std::make_unique<runtime::ThreadCtx>(tid, 90 + tid));
  }

  // Three workload phases per thread:
  //   A: one thread is HTM-hostile (lock-bound) with *small* footprints
  //      -> few orecs used, slow path valuable: orecs shrink toward fit;
  //   B: everyone HTM-friendly, conflicts rare
  //      -> slow path unused: instrumentation switches off (plain TLE);
  //   C: hostile again -> the periodic re-probe turns the slow path back on.
  constexpr std::uint64_t kPhaseOps = 1500;
  for (std::uint32_t tid = 0; tid < kThreads; ++tid) {
    runtime::ThreadCtx* th = threads[tid].get();
    sim.sched.spawn(
        [&, th, tid] {
          for (int phase = 0; phase < 3; ++phase) {
            for (std::uint64_t i = 0; i < kPhaseOps; ++i) {
              set.reserve_nodes(*th, 4);
              const std::uint64_t key = th->rng.below(kKeyRange);
              const bool hostile = (phase != 1) && tid == 0;
              auto cs = [&](runtime::TxContext& ctx) {
                if (th->rng.pct(30)) {
                  set.insert(ctx, key);
                } else {
                  set.contains(ctx, key);
                }
                if (hostile) ctx.htm_unfriendly();
              };
              method.execute(*th, cs);
            }
          }
        },
        tid);
  }
  sim.sched.run();

  const auto& s = method.stats();
  std::printf("adaptive FG-TLE after a shifting workload:\n");
  std::printf("  final orec count        : %u (started at 256)\n",
              method.norecs());
  std::printf("  instrumentation enabled : %s\n",
              method.instrumentation_enabled() ? "yes" : "no");
  std::printf("  ops=%llu fast=%llu slow=%llu lock=%llu\n",
              static_cast<unsigned long long>(s.ops),
              static_cast<unsigned long long>(s.commit_fast_htm),
              static_cast<unsigned long long>(s.commit_slow_htm),
              static_cast<unsigned long long>(s.commit_lock));
  std::printf("  AVL invariants          : %s\n",
              set.invariants_ok() ? "OK" : "BROKEN");
  return set.invariants_ok() ? 0 : 1;
}
