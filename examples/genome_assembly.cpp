// End-to-end genome assembly (the paper's ccTSA application, §6.4): build a
// De Bruijn graph from synthetic short reads through a single lock-elided
// hash map, extract contigs, and verify every contig aligns back to the
// genome. Compares the transactified single-map pipeline against the
// original-style striped fine-grained-locking scheme.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util/setbench.h"
#include "cctsa/assembler.h"
#include "sim/env.h"

using namespace rtle;

int main() {
  cctsa::GenomeConfig gcfg;
  gcfg.genome_length = 30000;
  gcfg.read_length = 36;
  // With k = 27 in 36-bp reads, a k-mer is covered by only 10 of the 36
  // read offsets, so k-mer coverage ≈ 0.28× read coverage: 20× reads give
  // ~5.6× k-mer coverage, enough to prune errors without shredding the
  // graph.
  gcfg.coverage = 20.0;
  gcfg.error_rate = 0.002;  // light sequencing noise, pruned below
  gcfg.seed = 4242;
  const cctsa::ReadSet reads = cctsa::generate_reads(gcfg);
  std::printf("synthetic genome: %zu bp, %zu reads x %zu bp, %.1fx "
              "coverage, %.1f%% error rate\n\n",
              gcfg.genome_length, reads.read_count(), reads.read_length,
              gcfg.coverage, gcfg.error_rate * 100);

  cctsa::AssemblerConfig acfg;
  acfg.k = 27;
  acfg.threads = 8;
  acfg.buckets = 1 << 15;
  // Prune below 3: drops error k-mers even when the same error was sampled
  // twice, while true k-mers (≈5.6× expected coverage) survive.
  acfg.prune_below = 3;
  acfg.keep_contigs = true;

  const auto mc = sim::MachineConfig::xeon();

  for (const char* name : {"Lock", "TLE", "FG-TLE(4096)"}) {
    const auto r = cctsa::assemble_single_map(
        mc, acfg, bench::method_by_name(name), reads);
    const double covered = cctsa::verify_contigs(reads, r.contig_strings);
    std::size_t longest = 0;
    for (const auto& c : r.contig_strings) {
      longest = std::max(longest, c.size());
    }
    if (covered < 0) {
      std::printf(
          "%-13s total %6.2f sim-ms — a contig failed to align (an error "
          "k-mer survived pruning); raise prune_below\n",
          name, r.total_ms);
    } else {
      std::printf(
          "%-13s total %6.2f sim-ms (build %.2f / prune %.2f / contigs "
          "%.2f)  %5zu contigs, longest %5zu bp, genome covered %.1f%%\n",
          name, r.total_ms, r.build_ms, r.prune_ms, r.contig_ms, r.contigs,
          longest, covered * 100);
    }
  }

  const auto striped = cctsa::assemble_striped(mc, acfg, reads);
  const double covered = cctsa::verify_contigs(reads, striped.contig_strings);
  std::printf(
      "%-13s total %6.2f sim-ms (build %.2f / prune %.2f / contigs %.2f) "
      " %5zu contigs, genome covered %.1f%%\n",
      "Lock.orig", striped.total_ms, striped.build_ms, striped.prune_ms,
      striped.contig_ms, striped.contigs, covered * 100);

  std::printf("\n(the transactified single-map pipeline matches the paper's "
              "§6.4 design; Lock.orig is the original 4096-stripe scheme)\n");
  return 0;
}
