// Ablation: fast-path retry budget, including an HLE-like configuration.
//
// The paper fixes retries at 5 (raised from libitm's 2) and calls the
// how-many-attempts question orthogonal (§2, refs [12,13]). This ablation
// quantifies it on our substrate: 1 attempt approximates Intel HLE's
// hardware begin-fail-acquire behavior, 2 is stock libitm, 5 is the paper,
// 10 is over-eager. Refined TLE's slow path softens the penalty of a small
// budget (a thread that falls back no longer stalls everyone).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util/figure.h"
#include "runtime/engine.h"
#include "tle/fgtle.h"
#include "tle/rwtle.h"
#include "tle/tle.h"

using namespace rtle;
using bench::SetBenchConfig;
using bench::Table;

namespace {

runtime::MethodSpec with_trials(const std::string& base, int trials) {
  return {base + "@" + std::to_string(trials),
          [base, trials]() -> std::unique_ptr<runtime::SyncMethod> {
            std::unique_ptr<runtime::ElidingMethod> m;
            if (base == "TLE") {
              m = std::make_unique<tle::TleMethod>();
            } else if (base == "RW-TLE") {
              m = std::make_unique<tle::RwTleMethod>();
            } else {
              m = std::make_unique<tle::FgTleMethod>(8192);
            }
            m->set_max_trials(trials);
            return m;
          }};
}

}  // namespace

RTLE_FIGURE("abl_trials", "Ablation: retry budget / HLE",
            "HTM attempts before the lock (1 ≈ Intel HLE, 2 = "
            "stock libitm, 5 = paper), xeon, range 8192, 20% "
            "ins/rem, ops/ms") {

  SetBenchConfig cfg;
  cfg.machine = sim::MachineConfig::xeon();
  cfg.key_range = 8192;
  cfg.insert_pct = 20;
  cfg.remove_pct = 20;
  cfg.duration_ms = args.scale(2.0, 0.25);

  const char* bases[] = {"TLE", "RW-TLE", "FG-TLE"};
  const int budgets[] = {1, 2, 5, 10};
  std::vector<std::uint32_t> threads = {8, 18, 36};

  for (std::uint32_t t : threads) {
    cfg.threads = t;
    std::printf("threads = %u:\n", t);
    Table table({"method", "trials=1 (HLE)", "trials=2", "trials=5",
                 "trials=10", "fallback%@5"});
    for (const char* base : bases) {
      std::vector<std::string> row = {base};
      double fb5 = 0;
      for (int b : budgets) {
        const auto r = bench::run_set_bench(cfg, with_trials(base, b));
        row.push_back(Table::num(r.ops_per_ms, 0));
        if (b == 5) fb5 = r.stats.lock_fallback_rate() * 100;
      }
      row.push_back(Table::num(fb5, 2));
      table.add_row(std::move(row));
    }
    table.print(args.csv);
    std::printf("\n");
  }
}
