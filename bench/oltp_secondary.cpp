// OLTP secondary-index lookups: throughput of read-only multi-key
// snapshots (Store::multi_get) as the shard count grows. Xeon, 18 threads.
//
// Each lookup resolves one popular "index entry" to a contiguous cluster
// of 4..8 primary keys, which hash routing scatters across shards — so a
// single logical read becomes a cross-shard read-only transaction. The
// cluster snapshot runs on the *read* cross seam: one hardware
// transaction entered through every involved shard's read subscription,
// with a shared-mode (for SUX) or exclusive (for the others) pessimistic
// fallback. A 5% upsert stream forces pessimistic writers into the mix
// (max_write_lines=0, as in oltp_readmostly), so the figure shows what a
// waiting or update-holding writer on *one* shard does to snapshots
// spanning *several*: under exclusive guards the writer dooms every
// lookup that touches its shard, under SUX only the upgrade's write
// suffix does.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/figure.h"
#include "oltp/workload.h"
#include "sim/config.h"

using namespace rtle;
using bench::Table;

namespace {

bench::perf::CellMetrics metrics_of(const oltp::WorkloadResult& r,
                                    const sim::MachineConfig& mc,
                                    double duration_ms) {
  bench::perf::CellMetrics m;
  m.ops_per_ms = r.ops_per_ms;
  const double attempts = static_cast<double>(
      r.stats.ops + r.cross.commits + r.stats.total_aborts() +
      r.cross.aborts);
  const double aborts =
      static_cast<double>(r.stats.total_aborts() + r.cross.aborts);
  m.abort_rate = attempts > 0 ? aborts / attempts : 0.0;
  m.lock_fallback = r.stats.lock_fallback_rate();
  const double run_cycles = duration_ms * mc.cycles_per_ms();
  m.time_under_lock =
      run_cycles > 0 ? r.stats.cycles_under_lock / run_cycles : 0.0;
  return m;
}

}  // namespace

RTLE_FIGURE("oltp_secondary", "OLTP secondary-index lookups",
            "read-only multi-shard cluster snapshots (ops/ms) vs shard "
            "count, 65/30/5 lookup/read/upsert mix, writes forced "
            "pessimistic, 18 threads, xeon") {
  const double duration = args.scale(2.0, 0.25);
  const std::uint32_t threads = 18;

  std::vector<std::uint32_t> shard_counts = {1, 2, 4, 8, 16};
  if (args.quick) shard_counts = {1, 4, 16};

  const char* names[] = {"TLE",     "RW-TLE",     "SUX-TLE",
                         "SUX-RW-TLE", "Silo-OCC"};

  std::vector<std::string> header = {"shards"};
  for (const char* n : names) header.push_back(n);
  Table table(header);
  for (std::uint32_t shards : shard_counts) {
    std::vector<std::string> row = {Table::num(std::uint64_t{shards})};
    for (const char* n : names) {
      oltp::WorkloadConfig cfg;
      cfg.machine = sim::MachineConfig::xeon();
      cfg.machine.htm.max_write_lines = 0;
      cfg.threads = threads;
      cfg.shards = shards;
      cfg.keys = 1 << 12;
      cfg.zipf_theta = 0.8;
      // 65% secondary-index lookups (4..8-key clusters), 30% single-key
      // reads, 5% upserts. No transfers: the write stream exists only to
      // put pessimistic writers in the snapshots' way.
      cfg.read_pct = 30;
      cfg.multi_pct = 0;
      cfg.secondary_pct = 65;
      cfg.multi_min = 4;
      cfg.multi_max = 8;
      cfg.duration_ms = duration;
      cfg.seed = 13;
      cfg.faults = args.faults;
      cfg.trace_file = args.trace;
      cfg.latency = args.latency;
      const auto r = oltp::run_workload(cfg, bench::method_by_name(n));
      bench::report_cell(n, "xeon/sec65/t18/s" + std::to_string(shards),
                         metrics_of(r, cfg.machine, duration));
      row.push_back(Table::num(r.ops_per_ms, 0));
      if (args.stats) {
        std::printf("  [stats] %-10s s=%-2u %s cross(htm/lock)=%llu/%llu\n",
                    n, shards, r.stats.summary().c_str(),
                    static_cast<unsigned long long>(r.cross.htm_commits),
                    static_cast<unsigned long long>(r.cross.lock_commits));
      }
      if (args.latency && !r.latency.empty()) {
        std::printf("  [latency] %-10s s=%-2u %s\n", n, shards,
                    r.latency.c_str());
      }
    }
    table.add_row(std::move(row));
  }
  table.print(args.csv);
}
