// OLTP concurrency-control contention ladder: the transaction-level CC
// protocols (Silo-OCC, TicToc, wait-die 2PL) head-to-head against the
// elision family (TLE, RW-TLE, RHNOrec) on the sharded store as contention
// sharpens. Xeon, 8 shards, 18 threads.
//
// Two axes, both of which move the protocols differently:
//
//   * Zipf theta at a fixed 50% write mix — skew concentrates conflicts on
//     hot records. Record-granularity CC (slot tables) keeps disjoint
//     writers parallel where NOrec-style global clocks serialize, but pays
//     per-record metadata on every access; elision pays nothing until the
//     hardware aborts.
//   * write fraction at fixed theta 0.99 — read-mostly mixes favor
//     optimistic validation (Silo's read sets verify cheaply, TicToc
//     extends timestamps instead of aborting), write-heavy mixes favor
//     pessimistic locking (wait-die holds its slots and never re-executes).
//
// --stats adds the per-method MethodStats summary, whose cc() section
// (validation aborts / wounds / timestamp extensions) attributes the
// protocol-specific abort work.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/figure.h"
#include "oltp/workload.h"
#include "sim/config.h"

using namespace rtle;
using bench::Table;

namespace {

bench::perf::CellMetrics metrics_of(const oltp::WorkloadResult& r,
                                    const sim::MachineConfig& mc,
                                    double duration_ms) {
  bench::perf::CellMetrics m;
  m.ops_per_ms = r.ops_per_ms;
  const double attempts =
      static_cast<double>(r.stats.ops + r.stats.total_aborts());
  m.abort_rate = attempts > 0 ? r.stats.total_aborts() / attempts : 0.0;
  m.lock_fallback = r.stats.lock_fallback_rate();
  const double run_cycles = duration_ms * mc.cycles_per_ms();
  m.time_under_lock =
      run_cycles > 0 ? r.stats.cycles_under_lock / run_cycles : 0.0;
  return m;
}

oltp::WorkloadConfig base_config(const bench::BenchArgs& args,
                                 double duration) {
  oltp::WorkloadConfig cfg;
  cfg.machine = sim::MachineConfig::xeon();
  cfg.threads = 18;
  cfg.shards = 8;
  cfg.keys = 1 << 12;
  cfg.read_pct = 50;
  cfg.multi_pct = 10;
  cfg.duration_ms = duration;
  cfg.seed = 23;
  cfg.faults = args.faults;
  cfg.trace_file = args.trace;
  cfg.latency = args.latency;
  return cfg;
}

std::string theta_tag(double theta) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "z%.2f", theta);
  return buf;
}

}  // namespace

RTLE_FIGURE("oltp_cc_contention", "OLTP CC contention ladder",
            "Silo-OCC / TicToc / wait-die 2PL vs the elision family on the "
            "sharded store, swept by Zipf theta and write fraction, "
            "8 shards, 18 threads, xeon") {
  const double duration = args.scale(2.0, 0.25);

  const char* names[] = {"Silo-OCC", "TicToc",  "WaitDie",
                         "RW-TLE",   "TLE",     "RHNOrec"};

  // Axis 1: skew at a fixed 50% write mix.
  std::vector<double> thetas = {0.0, 0.8, 0.99, 1.2};
  if (args.quick) thetas = {0.99};
  std::vector<std::string> header = {"theta"};
  for (const char* n : names) header.push_back(n);
  Table skew(header);
  for (double theta : thetas) {
    std::vector<std::string> row = {Table::num(theta, 2)};
    for (const char* n : names) {
      oltp::WorkloadConfig cfg = base_config(args, duration);
      cfg.zipf_theta = theta;
      const auto r = oltp::run_workload(cfg, bench::method_by_name(n));
      bench::report_cell(n, "xeon/s8/t18/" + theta_tag(theta),
                         metrics_of(r, cfg.machine, duration));
      row.push_back(Table::num(r.ops_per_ms, 0));
      if (args.stats) {
        std::printf("  [stats] %-10s z=%.2f %s\n", n, theta,
                    r.stats.summary().c_str());
      }
    }
    skew.add_row(std::move(row));
  }
  std::printf("skew ladder (50%% writes, saturated ops/ms):\n");
  skew.print(args.csv);

  // Axis 2: write fraction at fixed theta 0.99.
  std::vector<int> write_pcts = {10, 50, 90};
  if (args.quick) write_pcts = {90};
  header = {"writes%"};
  for (const char* n : names) header.push_back(n);
  Table writes(header);
  for (int w : write_pcts) {
    std::vector<std::string> row = {std::to_string(w)};
    for (const char* n : names) {
      oltp::WorkloadConfig cfg = base_config(args, duration);
      cfg.zipf_theta = 0.99;
      cfg.read_pct = 100 - w;
      const auto r = oltp::run_workload(cfg, bench::method_by_name(n));
      bench::report_cell(n, "xeon/s8/t18/z0.99/w" + std::to_string(w),
                         metrics_of(r, cfg.machine, duration));
      row.push_back(Table::num(r.ops_per_ms, 0));
      if (args.stats) {
        std::printf("  [stats] %-10s w=%d %s\n", n, w,
                    r.stats.summary().c_str());
      }
    }
    writes.add_row(std::move(row));
  }
  std::printf("write-fraction ladder (theta 0.99, saturated ops/ms):\n");
  writes.print(args.csv);
}
