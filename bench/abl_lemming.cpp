// Ablation: the lemming effect [Dice et al., ref 10] as a time series.
//
// TLE's collapse is not a smooth degradation — it is a phase change: one
// lock acquisition dooms every speculating thread, the stampede of retries
// produces more failures, and the system locks into a convoy. This bench
// makes the dynamics visible: a contended AVL workload runs in consecutive
// simulated time slices, with an artificial burst of lock-hostile
// operations injected in one slice. TLE's throughput craters during the
// burst and recovers only slowly (or not at all at high thread counts),
// while FG-TLE's slow path absorbs it.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util/figure.h"
#include "ds/avl.h"
#include "sim/env.h"

using namespace rtle;
using bench::Table;
using runtime::ThreadCtx;
using runtime::TxContext;

namespace {

std::vector<double> run_timeline(const char* method_name,
                                 std::uint32_t threads, int slices,
                                 int burst_slice, double slice_ms) {
  SimScope sim(sim::MachineConfig::xeon());
  constexpr std::uint64_t kRange = 8192;
  ds::AvlSet set(kRange + 64 * threads + 64, threads);
  for (std::uint64_t k = 0; k < kRange; k += 2) set.insert_meta(k);
  auto method = bench::method_by_name(method_name).make();
  method->prepare(threads);

  std::vector<std::unique_ptr<ThreadCtx>> ctxs;
  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    ctxs.push_back(std::make_unique<ThreadCtx>(tid, 900 + tid));
  }

  std::vector<double> per_slice;
  const auto& mc = sim.sched.machine();
  std::uint64_t prev_ops = 0;
  for (int s = 0; s < slices; ++s) {
    const bool burst = s == burst_slice;
    const std::uint64_t t_end =
        sim.sched.epoch() +
        static_cast<std::uint64_t>(slice_ms * mc.cycles_per_ms());
    for (std::uint32_t tid = 0; tid < threads; ++tid) {
      ThreadCtx* th = ctxs[tid].get();
      sim.sched.spawn(
          [&, th, tid, burst, t_end] {
            while (cur_sched().now() < t_end) {
              set.reserve_nodes(*th, 4);
              const std::uint64_t key = th->rng.below(kRange);
              const std::uint32_t r = th->rng.below(100);
              // During the burst, thread 0 becomes HTM-hostile: every one
              // of its operations takes the lock.
              const bool hostile = burst && tid == 0;
              auto cs = [&](TxContext& ctx) {
                if (r < 20) {
                  set.insert(ctx, key);
                } else if (r < 40) {
                  set.remove(ctx, key);
                } else {
                  set.contains(ctx, key);
                }
                if (hostile) ctx.htm_unfriendly();
              };
              method->execute(*th, cs);
            }
          },
          tid);
    }
    sim.sched.run();
    const std::uint64_t ops = method->stats().ops;
    per_slice.push_back((ops - prev_ops) / slice_ms);
    prev_ops = ops;
  }
  return per_slice;
}

}  // namespace

RTLE_FIGURE("abl_lemming", "Ablation: lemming-effect timeline",
            "ops/ms per 0.2-sim-ms slice; one thread turns "
            "HTM-hostile during slice 3, xeon, 18 threads, "
            "range 8192, 20% ins/rem") {

  const int slices = args.quick ? 6 : 10;
  const int burst = 3;
  const double slice_ms = args.scale(0.2, 0.1);

  Table table({"slice", "TLE", "RW-TLE", "FG-TLE(8192)", "note"});
  const auto tle = run_timeline("TLE", 18, slices, burst, slice_ms);
  const auto rw = run_timeline("RW-TLE", 18, slices, burst, slice_ms);
  const auto fg = run_timeline("FG-TLE(8192)", 18, slices, burst, slice_ms);
  // Per-slice throughput only; the timeline driver has no per-slice abort
  // or residency accounting, so the remaining metrics stay 0.
  const struct { const char* name; const std::vector<double>* v; } series[] =
      {{"TLE", &tle}, {"RW-TLE", &rw}, {"FG-TLE(8192)", &fg}};
  for (const auto& sr : series) {
    for (int s = 0; s < slices; ++s) {
      bench::report_cell(sr.name,
                         "xeon/r8192/i20r20/t18/s" + std::to_string(s),
                         {(*sr.v)[s], 0.0, 0.0, 0.0});
    }
  }
  for (int s = 0; s < slices; ++s) {
    table.add_row({Table::num(std::uint64_t(s)), Table::num(tle[s], 0),
                   Table::num(rw[s], 0), Table::num(fg[s], 0),
                   s == burst ? "<- hostile burst" : ""});
  }
  table.print(args.csv);
}
