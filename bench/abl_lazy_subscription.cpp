// Ablation: eager vs lazy lock subscription on the refined-TLE slow path
// (paper §5). Lazy subscription restores lock-as-barrier semantics but a
// slow-path transaction can then only commit once the lock is free, cutting
// into the very concurrency refined TLE exists to provide — most visibly in
// the Fig-12-style workload where the lock is held almost continuously.
#include <cstdio>
#include <vector>

#include "bench_util/figure.h"

using namespace rtle;
using bench::SetBenchConfig;
using bench::Table;

RTLE_FIGURE("abl_lazy_subscription", "Ablation: lazy subscription",
            "eager vs lazy slow-path lock subscription, xeon") {

  const char* methods[] = {"RW-TLE", "RW-TLE-lazy", "FG-TLE(8192)",
                           "FG-TLE-lazy(8192)"};
  std::vector<std::uint32_t> threads = {2, 8, 18, 36};

  // Workload A: the Fig-5 mixed workload (lock held occasionally).
  {
    SetBenchConfig cfg;
    cfg.machine = sim::MachineConfig::xeon();
    cfg.key_range = 8192;
    cfg.insert_pct = 20;
    cfg.remove_pct = 20;
    cfg.duration_ms = args.scale(2.0, 0.25);
    std::printf("A) AVL range 8192, 20%% ins/rem (ops/ms):\n");
    std::vector<std::string> header = {"threads"};
    for (const char* m : methods) header.push_back(m);
    Table t(header);
    for (std::uint32_t n : threads) {
      cfg.threads = n;
      std::vector<std::string> row = {Table::num(std::uint64_t{n})};
      for (const char* m : methods) {
        row.push_back(Table::num(
            bench::run_set_bench(cfg, bench::method_by_name(m)).ops_per_ms,
            0));
      }
      t.add_row(std::move(row));
    }
    t.print(args.csv);
  }

  // Workload B: Fig-12 style — one HTM-hostile updater keeps the lock hot;
  // slow-path commits while the lock is held are the whole ballgame, so
  // lazy subscription hurts maximally.
  {
    SetBenchConfig cfg;
    cfg.machine = sim::MachineConfig::xeon();
    cfg.key_range = 65536;
    cfg.insert_pct = 0;
    cfg.remove_pct = 0;
    cfg.unfriendly_thread0 = true;
    cfg.duration_ms = args.scale(2.0, 0.25);
    std::printf("\nB) one HTM-unfriendly updater + readers, range 65536 "
                "(ops/ms / slow-path commits while locked):\n");
    std::vector<std::string> header = {"threads"};
    for (const char* m : methods) header.push_back(m);
    Table t(header);
    for (std::uint32_t n : threads) {
      cfg.threads = n;
      std::vector<std::string> row = {Table::num(std::uint64_t{n})};
      for (const char* m : methods) {
        const auto r = bench::run_set_bench(cfg, bench::method_by_name(m));
        row.push_back(Table::num(r.ops_per_ms, 0) + "/" +
                      Table::num(r.stats.slow_htm_while_locked));
      }
      t.add_row(std::move(row));
    }
    t.print(args.csv);
  }
}
