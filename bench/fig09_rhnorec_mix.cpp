// Figure 9: RHNOrec execution-type distribution — the fraction of completed
// critical sections that committed as pure-HTM fast path (no timestamp
// bump), HTM slow (timestamp bumped), software transaction with an
// HTM-assisted commit, and software transaction that fell back to the global
// commit lock. Key range 8192, 20% Insert/Remove, Xeon.
//
// Paper finding: at 16 threads and above almost nothing commits in hardware
// (the lemming effect of §6.2.2).
#include <cstdio>
#include <vector>

#include "bench_util/figure.h"

using namespace rtle;
using bench::SetBenchConfig;
using bench::Table;

RTLE_FIGURE("fig09", "Figure 9",
            "RHNOrec execution-type distribution, xeon, range "
            "8192, 20% ins/rem") {

  SetBenchConfig cfg;
  cfg.machine = sim::MachineConfig::xeon();
  cfg.key_range = 8192;
  cfg.insert_pct = 20;
  cfg.remove_pct = 20;
  cfg.duration_ms = args.scale(2.0, 0.25);
  cfg.faults = args.faults;
  cfg.retry_policy = args.retry;
  cfg.trace_file = args.trace;
  cfg.latency = args.latency;
  std::vector<std::uint32_t> threads = {1, 2, 4, 8, 12, 16, 18, 24, 28, 36};
  if (args.quick) threads = {1, 8, 18, 36};

  Table table({"threads", "HTMFast", "HTMSlow", "STMFastCommit",
               "STMSlowCommit"});
  const auto spec = bench::method_by_name("RHNOrec");
  for (std::uint32_t t : threads) {
    cfg.threads = t;
    const auto r = bench::run_set_bench(cfg, spec);
    const double total = static_cast<double>(r.stats.ops);
    auto frac = [&](std::uint64_t v) {
      return Table::num(total == 0 ? 0.0 : v / total, 3);
    };
    table.add_row({Table::num(std::uint64_t{t}),
                   frac(r.stats.rhn_htm_fast), frac(r.stats.rhn_htm_slow),
                   frac(r.stats.commit_stm_ro + r.stats.commit_stm_htm),
                   frac(r.stats.commit_stm_lock)});
    if (args.stats) {
      std::printf("  [stats] t=%-2u %s\n", t, r.stats.summary().c_str());
    }
    if (args.latency && !r.latency.empty()) {
      std::printf("  [latency] t=%-2u %s\n", t, r.latency.c_str());
    }
  }
  table.print(args.csv);
}
