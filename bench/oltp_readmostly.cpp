// OLTP read-mostly traffic: throughput of the sharded store at 95/5 and
// 99/1 read/upsert mixes as the shard count grows, SUX elision vs the
// exclusive-lock family vs OCC. Xeon, 18 threads.
//
// The machine's write capacity is pinned to zero lines, so every upsert's
// HTM attempt dies on kCapacity and the write always runs under its
// shard's fallback guard — the shape where the guard's *kind* decides
// everything:
//
//   * TLE / HLE — the pessimistic writer holds the one exclusive word for
//     its whole section; every elided reader on that shard aborts and
//     convoys behind it.
//   * RW-TLE — the writer still takes the exclusive word, but readers get
//     an instrumented slow HTM path subscribed to the write flag, so they
//     keep committing through the holder's read prefix.
//   * SUX-TLE / SUX-RW-TLE — the writer enters in *update* mode, which
//     leaves is_locked() false; elided readers (subscribing is_locked()
//     only) never notice it until the upgrade publishes the exclusive
//     word for just the write suffix. Read fallbacks take shared mode and
//     coexist with each other and with the update holder.
//   * Silo-OCC — no guard at all; reads validate at commit.
//
// At 99/1 on 4+ shards the SUX methods should hold near-reader-only
// throughput while single-exclusive TLE pays a full convoy per upsert —
// the crossover BENCH_PR9 pins.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/figure.h"
#include "oltp/workload.h"
#include "sim/config.h"

using namespace rtle;
using bench::Table;

namespace {

bench::perf::CellMetrics metrics_of(const oltp::WorkloadResult& r,
                                    const sim::MachineConfig& mc,
                                    double duration_ms) {
  bench::perf::CellMetrics m;
  m.ops_per_ms = r.ops_per_ms;
  const double attempts =
      static_cast<double>(r.stats.ops + r.stats.total_aborts());
  m.abort_rate = attempts > 0 ? r.stats.total_aborts() / attempts : 0.0;
  m.lock_fallback = r.stats.lock_fallback_rate();
  const double run_cycles = duration_ms * mc.cycles_per_ms();
  m.time_under_lock =
      run_cycles > 0 ? r.stats.cycles_under_lock / run_cycles : 0.0;
  return m;
}

}  // namespace

RTLE_FIGURE("oltp_readmostly", "OLTP read-mostly mixes",
            "sharded store throughput (ops/ms) vs shard count at 95/5 and "
            "99/1 read/upsert mixes, writes forced pessimistic "
            "(max_write_lines=0), 18 threads, xeon") {
  const double duration = args.scale(2.0, 0.25);
  const std::uint32_t threads = 18;

  std::vector<std::uint32_t> shard_counts = {1, 2, 4, 8, 16};
  if (args.quick) shard_counts = {1, 4, 16};

  const char* names[] = {"TLE",     "RW-TLE",     "SUX-TLE",
                         "SUX-RW-TLE", "Silo-OCC"};

  for (std::uint32_t read_pct : {95u, 99u}) {
    std::printf("-- %u/%u read/upsert --\n", read_pct, 100 - read_pct);
    std::vector<std::string> header = {"shards"};
    for (const char* n : names) header.push_back(n);
    Table table(header);
    for (std::uint32_t shards : shard_counts) {
      std::vector<std::string> row = {Table::num(std::uint64_t{shards})};
      for (const char* n : names) {
        oltp::WorkloadConfig cfg;
        cfg.machine = sim::MachineConfig::xeon();
        // Zero write capacity: any transactional store aborts the hardware
        // transaction, so upserts always run under the fallback guard
        // while pure reads keep eliding — isolating how each guard treats
        // readers during a writer's pessimistic section.
        cfg.machine.htm.max_write_lines = 0;
        cfg.threads = threads;
        cfg.shards = shards;
        cfg.keys = 1 << 12;
        cfg.zipf_theta = 0.8;
        cfg.read_pct = read_pct;
        cfg.multi_pct = 0;
        cfg.duration_ms = duration;
        cfg.seed = 11;
        cfg.faults = args.faults;
        cfg.trace_file = args.trace;
        cfg.latency = args.latency;
        const auto r = oltp::run_workload(cfg, bench::method_by_name(n));
        bench::report_cell(n,
                           "xeon/r" + std::to_string(read_pct) + "/t18/s" +
                               std::to_string(shards),
                           metrics_of(r, cfg.machine, duration));
        row.push_back(Table::num(r.ops_per_ms, 0));
        if (args.stats) {
          std::printf("  [stats] %-10s r=%u s=%-2u %s\n", n, read_pct,
                      shards, r.stats.summary().c_str());
        }
        if (args.latency && !r.latency.empty()) {
          std::printf("  [latency] %-10s r=%u s=%-2u %s\n", n, read_pct,
                      shards, r.latency.c_str());
        }
      }
      table.add_row(std::move(row));
    }
    table.print(args.csv);
    std::printf("\n");
  }
}
