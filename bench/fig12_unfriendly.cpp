// Figure 12: total throughput when one thread consistently executes an
// HTM-unfriendly instruction (modeled after the paper's divide-by-zero)
// inside Insert/Remove critical sections, while all other threads run Find.
// Key range 65536, the unfriendly instruction placed at the end of the
// critical section, Xeon.
//
// Paper findings: TLE flatlines (the unfriendly thread keeps taking the
// lock, blocking everyone); FG-TLE scales across all thread counts; RW-TLE
// scales to ~19 threads then collapses (lemming effect from its eager
// return to the fast path); RHNOrec collapses on timestamp contention;
// NOrec scales but stays well below FG-TLE.
#include <cstdio>
#include <vector>

#include "bench_util/figure.h"

using namespace rtle;
using bench::SetBenchConfig;
using bench::Table;

RTLE_FIGURE("fig12", "Figure 12",
            "one HTM-unfriendly updater + (N-1) readers, xeon, "
            "range 65536, total ops/ms") {

  SetBenchConfig cfg;
  cfg.machine = sim::MachineConfig::xeon();
  cfg.key_range = 65536;
  cfg.insert_pct = 0;
  cfg.remove_pct = 0;
  cfg.duration_ms = args.scale(2.0, 0.25);
  cfg.unfriendly_thread0 = true;
  cfg.unfriendly_at_end = true;
  cfg.faults = args.faults;
  cfg.retry_policy = args.retry;
  cfg.htm_health = args.htm_health;
  cfg.trace_file = args.trace;
  cfg.latency = args.latency;
  std::vector<std::uint32_t> threads = {2, 3, 5, 9, 13, 17, 19, 25, 29, 36};
  if (args.quick) threads = {2, 9, 19, 36};

  const char* names[] = {"Lock",      "TLE",          "RW-TLE",
                         "FG-TLE(1)", "FG-TLE(16)",   "FG-TLE(256)",
                         "FG-TLE(4096)", "FG-TLE(8192)", "NOrec", "RHNOrec"};

  std::vector<std::string> header = {"threads"};
  for (const char* n : names) header.push_back(n);
  Table table(header);
  for (std::uint32_t t : threads) {
    cfg.threads = t;
    std::vector<std::string> row = {Table::num(std::uint64_t{t})};
    for (const char* n : names) {
      const auto r = bench::run_set_bench(cfg, bench::method_by_name(n));
      row.push_back(Table::num(r.ops_per_ms, 0));
      if (args.latency && !r.latency.empty()) {
        std::printf("  [latency] %-12s t=%-2u %s\n", n, t,
                    r.latency.c_str());
      }
    }
    table.add_row(std::move(row));
  }
  table.print(args.csv);
}
