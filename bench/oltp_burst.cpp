// OLTP flash crowd: SLO survival through a regime change.
//
// Two tenants share the store. Tenant 0 is a well-behaved read-mostly
// service; tenant 1 is write-heavy and transfer-heavy, and at flash_start
// it stampedes — an 8x arrival burst of capacity-hostile traffic (the
// machine's 1-line write capacity makes every transfer overflow HTM, so
// the burst also flips the abort-cause regime from light to
// capacity/conflict). Static configurations either diverge (queue growth
// blows p99 through the SLO for the rest of the run) or pay the
// speculation tax for a regime they were not picked for. The adaptive row
// runs the same store behind rtle::admit: the controller sheds the
// aggressor's excess (weighted-fair, so tenant 0 keeps its share), the
// regime detector notices the abort mix and switches the shard guards off
// speculation for the duration of the crowd, and the probe/backoff loop
// re-opens and switches back once the flash passes. The timeline table is
// the figure: per-window p99, quota, regime, and the guard method in use.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/figure.h"
#include "oltp/workload.h"
#include "sim/config.h"

using namespace rtle;
using bench::Table;

namespace {

/// p99 sojourn SLO, simulated cycles (~26us on the 2.3GHz xeon model).
constexpr std::uint64_t kSloCycles = 60'000;

bench::perf::CellMetrics metrics_of(const oltp::WorkloadResult& r,
                                    const sim::MachineConfig& mc,
                                    double duration_ms) {
  bench::perf::CellMetrics m;
  m.ops_per_ms = r.ops_per_ms;
  const double attempts =
      static_cast<double>(r.stats.ops + r.stats.total_aborts());
  m.abort_rate = attempts > 0 ? r.stats.total_aborts() / attempts : 0.0;
  m.lock_fallback = r.stats.lock_fallback_rate();
  const double run_cycles = duration_ms * mc.cycles_per_ms();
  m.time_under_lock =
      run_cycles > 0 ? r.stats.cycles_under_lock / run_cycles : 0.0;
  return m;
}

oltp::WorkloadConfig flash_config(const bench::BenchArgs& args) {
  oltp::WorkloadConfig cfg;
  cfg.machine = sim::MachineConfig::xeon();
  // 1-line write capacity: single-key ops still elide, every 2..4-key
  // transfer overflows — the flash tenant's transfer-heavy mix turns the
  // burst into a capacity-regime event, not just a rate spike.
  cfg.machine.htm.max_write_lines = 1;
  cfg.threads = 18;
  cfg.shards = 8;
  cfg.keys = 1 << 12;
  cfg.zipf_theta = 0.3;
  cfg.read_pct = 80;
  cfg.multi_pct = 10;
  cfg.duration_ms = args.scale(2.0, 1.0);
  cfg.seed = 31;
  cfg.arrivals_per_ms = 8'000.0;
  cfg.arrival.process = oltp::ArrivalProcess::kFlash;
  cfg.arrival.flash_multiplier = 8.0;
  cfg.arrival.flash_start_ms = args.scale(0.6, 0.3);
  cfg.arrival.flash_len_ms = args.scale(0.8, 0.4);
  cfg.arrival.flash_tenant = 1;
  // Tenant 0: the service we protect. Tenant 1: the aggressor — hot keys,
  // no reads, transfer-heavy (and the flash stream is all tenant 1).
  cfg.tenants = {{/*weight=*/3.0, /*zipf_theta=*/0.3, /*read_pct=*/80,
                  /*multi_pct=*/10},
                 {/*weight=*/1.0, /*zipf_theta=*/0.9, /*read_pct=*/0,
                  /*multi_pct=*/60}};
  cfg.faults = args.faults;
  cfg.trace_file = args.trace;
  cfg.latency = args.latency;
  return cfg;
}

oltp::AdaptivePolicy adaptive_policy() {
  oltp::AdaptivePolicy p;
  p.enabled = true;
  p.admit.slo_p99_cycles = kSloCycles;
  // Second SLO quantile: the p99.9 tail gets 4x the p99 budget. The broad
  // p99 leg trips first under the crowd; the tail leg catches straggler
  // regimes (lock convoys) that a p99-only objective would sit through.
  p.admit.slo_p999_cycles = 4 * kSloCycles;
  p.admit.interval_cycles = 4 * kSloCycles;
  p.switch_methods = true;
  // Per-regime winners for this machine: speculate when light, drop to the
  // plain lock when the abort mix says speculation is wasted work.
  p.method_light = bench::method_by_name("TLE");
  p.method_conflict = bench::method_by_name("Lock");
  p.method_capacity = bench::method_by_name("Lock");
  return p;
}

}  // namespace

RTLE_FIGURE("oltp_burst", "OLTP flash crowd",
            "flash-crowd timeline: static methods vs admission control "
            "with runtime method switching, under a p99 sojourn SLO") {
  const double duration = args.scale(2.0, 1.0);

  const char* statics[] = {"Lock", "TLE", "FG-TLE(256)", "RHNOrec"};

  Table head({"config", "served/ms", "p99 (kcyc)", "SLO", "shed",
              "switches"});
  oltp::WorkloadResult adaptive;
  auto add_row = [&](const std::string& label,
                     const oltp::WorkloadResult& r) {
    head.add_row({label, Table::num(r.ops_per_ms, 0),
                  Table::num(r.sojourn_p99 / 1000.0, 1),
                  r.sojourn_p99 <= kSloCycles ? "ok" : "MISS",
                  Table::num(r.admit_sheds),
                  Table::num(r.method_switches)});
    if (args.stats) {
      std::printf("  [stats] %-12s %s\n", label.c_str(),
                  r.stats.summary().c_str());
    }
  };

  for (const char* n : statics) {
    oltp::WorkloadConfig cfg = flash_config(args);
    const auto r = oltp::run_workload(cfg, bench::method_by_name(n));
    bench::report_cell(n, "xeon/s8/t18/flash",
                       metrics_of(r, cfg.machine, duration));
    add_row(n, r);
  }
  {
    oltp::WorkloadConfig cfg = flash_config(args);
    cfg.policy = adaptive_policy();
    adaptive = oltp::run_workload(cfg, bench::method_by_name("TLE"));
    bench::report_cell("Adaptive", "xeon/s8/t18/flash",
                       metrics_of(adaptive, cfg.machine, duration));
    add_row("Adaptive", adaptive);
  }
  std::printf("flash crowd (8000 arrivals/ms base, x8 burst; p99 over the "
              "whole run, %llu-cycle SLO):\n",
              static_cast<unsigned long long>(kSloCycles));
  head.print(args.csv);

  // The adaptive run's controller timeline — one row per evaluation
  // window. This is the figure's story: p99 spikes as the crowd lands,
  // the controller trips to shedding and the detector swaps the guards;
  // after the crowd passes, probes re-open and the guards switch back.
  Table tl({"t (ms)", "p99 (kcyc)", "p99.9 (kcyc)", "admit", "shed",
            "quota", "state", "regime", "method"});
  for (const auto& w : adaptive.timeline) {
    tl.add_row({Table::num(w.t_ms, 2), Table::num(w.p99 / 1000.0, 1),
                Table::num(w.p999 / 1000.0, 1),
                Table::num(w.admitted), Table::num(w.sheds),
                w.quota != 0 ? Table::num(w.quota) : "-",
                admit::to_string(static_cast<admit::State>(w.state)),
                admit::to_string(static_cast<admit::Regime>(w.regime)),
                w.method + (w.switched ? " *" : "")});
  }
  std::printf("adaptive timeline (* = guards switched at this window):\n");
  tl.print(args.csv);

  // Fairness: the sheds should land on the aggressor, and the protected
  // tenant's own p99 should hold through the crowd.
  if (adaptive.tenants.size() == 2) {
    Table fair({"tenant", "admitted", "shed", "p99 (kcyc)", "SLO"});
    const char* names[] = {"t0 (protected)", "t1 (aggressor)"};
    for (std::size_t t = 0; t < adaptive.tenants.size(); ++t) {
      const auto& tr = adaptive.tenants[t];
      fair.add_row({names[t], Table::num(tr.admitted),
                    Table::num(tr.sheds),
                    Table::num(tr.sojourn_p99 / 1000.0, 1),
                    tr.sojourn_p99 <= kSloCycles ? "ok" : "MISS"});
    }
    std::printf("adaptive per-tenant outcome:\n");
    fair.print(args.csv);
  }
}
