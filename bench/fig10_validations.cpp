// Figure 10: average value-based read-set validations per transaction for
// NOrec vs RHNOrec. Key range 8192, 20% Insert/Remove, Xeon.
//
// Paper finding: as long as hardware transactions still commit on the
// RHNOrec slow path, each of their timestamp bumps triggers a wave of
// software revalidations, so RHNOrec's validation count skyrockets compared
// to plain NOrec.
#include <cstdio>
#include <vector>

#include "bench_util/figure.h"

using namespace rtle;
using bench::SetBenchConfig;
using bench::Table;

RTLE_FIGURE("fig10", "Figure 10",
            "value-based validations per transaction, NOrec vs "
            "RHNOrec, xeon, range 8192, 20% ins/rem") {

  SetBenchConfig cfg;
  cfg.machine = sim::MachineConfig::xeon();
  cfg.key_range = 8192;
  cfg.insert_pct = 20;
  cfg.remove_pct = 20;
  cfg.duration_ms = args.scale(2.0, 0.25);
  cfg.faults = args.faults;
  cfg.retry_policy = args.retry;
  cfg.trace_file = args.trace;
  cfg.latency = args.latency;
  std::vector<std::uint32_t> threads = {1, 2, 4, 8, 12, 16, 18, 24, 28, 36};
  if (args.quick) threads = {1, 8, 18, 36};

  Table table({"threads", "NOrec", "RHNOrec"});
  for (std::uint32_t t : threads) {
    cfg.threads = t;
    const auto rn =
        bench::run_set_bench(cfg, bench::method_by_name("NOrec"));
    const auto rh =
        bench::run_set_bench(cfg, bench::method_by_name("RHNOrec"));
    table.add_row({Table::num(std::uint64_t{t}),
                   Table::num(rn.validations_per_tx(), 2),
                   Table::num(rh.validations_per_tx(), 2)});
    if (args.latency) {
      if (!rn.latency.empty()) {
        std::printf("  [latency] NOrec   t=%-2u %s\n", t, rn.latency.c_str());
      }
      if (!rh.latency.empty()) {
        std::printf("  [latency] RHNOrec t=%-2u %s\n", t, rh.latency.c_str());
      }
    }
  }
  table.print(args.csv);
}
