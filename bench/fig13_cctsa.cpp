// Figure 13: total runtime of the ccTSA assembler vs. thread count —
// the original fine-grained-locking scheme (Lock.orig: thousands of striped
// hash maps, one lock per k-mer) against the transactified single-map
// variant under Lock / TLE / RW-TLE / FG-TLE(N). Also reports the §6.4.2
// lock-fallback fractions.
//
// Paper findings: the simplified single-map variant is >2x faster than
// Lock.orig at one thread but scales negatively without elision; with
// elision it beats Lock.orig at every thread count; all elision variants
// rarely fall back to the lock (max 0.15% for TLE at 36 threads); at 36
// threads only FG-TLE with ≥1024 orecs beats TLE.
#include <cstdio>
#include <vector>

#include "bench_util/figure.h"
#include "cctsa/assembler.h"

using namespace rtle;
using bench::Table;

namespace {

// ccTSA cells report k-mer-insertion throughput (ops / simulated ms) so the
// perf trajectory keeps its "higher is better" convention even though the
// figure itself plots total runtime.
bench::perf::CellMetrics cctsa_metrics(const cctsa::AssemblerResult& r) {
  bench::perf::CellMetrics m;
  m.ops_per_ms = r.total_ms > 0 ? r.stats.ops / r.total_ms : 0.0;
  const double attempts =
      static_cast<double>(r.stats.ops + r.stats.total_aborts());
  m.abort_rate = attempts > 0 ? r.stats.total_aborts() / attempts : 0.0;
  m.lock_fallback = r.lock_fallback;
  m.time_under_lock = 0.0;  // the assembler does not track lock residency
  return m;
}

}  // namespace

RTLE_FIGURE("fig13", "Figure 13",
            "ccTSA assembler total runtime (simulated ms) vs "
            "threads; synthetic genome, 36-bp reads, k=27") {

  // Genome scaled down from E. coli's 4.6 Mbp to keep wall-clock time
  // reasonable; k-mer collision rates stay low enough that, as on the real
  // input, concurrent reads rarely conflict.
  cctsa::GenomeConfig gcfg;
  gcfg.genome_length =
      static_cast<std::size_t>(args.scale(1000000, 300000));
  gcfg.read_length = 36;
  // Coverage 4: most of the genome assembles, while coverage gaps break the
  // De Bruijn graph into thousands of unitigs — the parallelism the contig
  // phase distributes across threads. The k-mer space must stay large (the
  // paper's E. coli input has ~4.6M of them): shrink it much further and
  // concurrent reads start conflicting at rates the real input never sees.
  gcfg.coverage = 4.0;
  gcfg.seed = 20260707;
  const cctsa::ReadSet reads = cctsa::generate_reads(gcfg);
  std::printf("genome=%zu bp, reads=%zu x %zu bp\n\n", gcfg.genome_length,
              reads.read_count(), reads.read_length);

  cctsa::AssemblerConfig acfg;
  acfg.k = 27;
  acfg.buckets = args.quick ? (1 << 19) : (1 << 20);
  acfg.trace_file = args.trace;
  acfg.latency = args.latency;

  std::vector<std::uint32_t> threads = {1, 2, 4, 8, 12, 18, 24, 36};
  if (args.quick) threads = {1, 8, 18, 36};

  const char* elided[] = {"Lock",        "TLE",          "RW-TLE",
                          "FG-TLE(1)",   "FG-TLE(16)",   "FG-TLE(256)",
                          "FG-TLE(1024)", "FG-TLE(4096)", "FG-TLE(8192)"};

  std::vector<std::string> header = {"threads", "Lock.orig"};
  for (const char* n : elided) header.push_back(n);
  Table table(header);
  Table fallback({"threads", "TLE_fallback_pct", "FG-TLE(8192)_fallback_pct"});

  const auto mc = sim::MachineConfig::xeon();
  for (std::uint32_t t : threads) {
    acfg.threads = t;
    std::vector<std::string> row = {Table::num(std::uint64_t{t})};
    const auto orig = cctsa::assemble_striped(mc, acfg, reads);
    bench::report_cell("Lock.orig", "xeon/cctsa/t" + std::to_string(t),
                       cctsa_metrics(orig));
    row.push_back(Table::num(orig.total_ms, 2));
    double tle_fb = 0;
    double fg_fb = 0;
    for (const char* n : elided) {
      const auto r = cctsa::assemble_single_map(
          mc, acfg, bench::method_by_name(n), reads);
      bench::report_cell(n, "xeon/cctsa/t" + std::to_string(t),
                         cctsa_metrics(r));
      row.push_back(Table::num(r.total_ms, 2));
      if (std::string(n) == "TLE") tle_fb = r.lock_fallback;
      if (std::string(n) == "FG-TLE(8192)") fg_fb = r.lock_fallback;
      if (args.stats) {
        std::printf("  [stats] %-14s t=%-2u %s\n", n, t,
                    r.stats.summary().c_str());
      }
      if (args.latency && !r.latency.empty()) {
        std::printf("  [latency] %-12s t=%-2u %s\n", n, t,
                    r.latency.c_str());
      }
    }
    table.add_row(std::move(row));
    fallback.add_row({Table::num(std::uint64_t{t}),
                      Table::num(tle_fb * 100, 3),
                      Table::num(fg_fb * 100, 3)});
  }
  std::printf("Total runtime (simulated ms):\n");
  table.print(args.csv);
  std::printf("\nLock fallback rates (%% of critical sections; §6.4.2 "
              "reports <= 0.15%% for TLE at 36 threads):\n");
  fallback.print(args.csv);
}
