// Figure 7: execution time under lock, normalized to the time measured for
// the lock-based (Lock method) execution with the same number of threads.
// Shows the instrumentation overhead ordering: TLE ≈ Lock < RW-TLE <
// FG-TLE(1) < FG-TLE(4) < FG-TLE(16) < FG-TLE(256+), the §4.2 uniq-counter
// optimization at work. Key range 8192, 20% Insert/Remove, Xeon.
#include <cstdio>
#include <vector>

#include "bench_util/figure.h"

using namespace rtle;
using bench::SetBenchConfig;
using bench::Table;

RTLE_FIGURE("fig07", "Figure 7",
            "avg critical-section time under lock relative to the "
            "Lock method at the same thread count") {

  SetBenchConfig cfg;
  cfg.machine = sim::MachineConfig::xeon();
  cfg.key_range = 8192;
  cfg.insert_pct = 20;
  cfg.remove_pct = 20;
  cfg.duration_ms = args.scale(2.0, 0.25);
  cfg.faults = args.faults;
  cfg.retry_policy = args.retry;
  cfg.htm_health = args.htm_health;
  cfg.trace_file = args.trace;
  cfg.latency = args.latency;
  std::vector<std::uint32_t> threads = {2, 4, 8, 12, 16, 18, 24, 28, 36};
  if (args.quick) threads = {8, 18, 36};

  std::vector<std::string> names = {
      "Lock",        "TLE",          "RW-TLE",       "FG-TLE(1)",
      "FG-TLE(4)",   "FG-TLE(16)",   "FG-TLE(256)",  "FG-TLE(1024)",
      "FG-TLE(4096)", "FG-TLE(8192)"};

  std::vector<std::string> header = {"threads"};
  for (const auto& n : names) header.push_back(n);
  Table table(header);

  for (std::uint32_t t : threads) {
    cfg.threads = t;
    const double base =
        bench::run_set_bench(cfg, bench::method_by_name("Lock"))
            .avg_cycles_under_lock();
    std::vector<std::string> row = {Table::num(std::uint64_t{t})};
    for (const auto& n : names) {
      const auto r = bench::run_set_bench(cfg, bench::method_by_name(n));
      const double v = r.avg_cycles_under_lock();
      row.push_back(v == 0 || base == 0 ? "-" : Table::num(v / base, 2));
      if (args.latency && !r.latency.empty()) {
        std::printf("  [latency] %-12s t=%-2u %s\n", n.c_str(), t,
                    r.latency.c_str());
      }
    }
    table.add_row(std::move(row));
  }
  table.print(args.csv);
}
