// Ablation: Adaptive FG-TLE (§4.2.1) against fixed orec counts and plain
// TLE across workloads with very different sweet spots:
//   * read-only (slow path worthless -> the adaptive variant should
//     converge to plain-TLE behavior and avoid instrumentation overhead);
//   * mixed 20% updates (moderate orec count wins);
//   * one HTM-hostile updater (large orec count wins).
// A single adaptive configuration should land near the best fixed choice in
// each column.
#include <cstdio>
#include <vector>

#include "bench_util/figure.h"

using namespace rtle;
using bench::SetBenchConfig;
using bench::Table;

RTLE_FIGURE("abl_adaptive", "Ablation: adaptive FG-TLE",
            "A-FG-TLE vs fixed configurations, xeon, 18 threads, "
            "ops/ms per workload") {

  const char* methods[] = {"TLE",          "RW-TLE",    "FG-TLE(1)",
                           "FG-TLE(256)",  "FG-TLE(8192)", "A-FG-TLE"};

  struct Workload {
    const char* name;
    std::uint32_t ins, rem;
    bool unfriendly;
    std::uint64_t range;
  };
  const Workload workloads[] = {
      {"read-only", 0, 0, false, 8192},
      {"20% updates", 20, 20, false, 8192},
      {"hostile updater", 0, 0, true, 65536},
  };

  std::vector<std::string> header = {"method"};
  for (const auto& w : workloads) header.push_back(w.name);
  Table t(header);

  for (const char* m : methods) {
    std::vector<std::string> row = {m};
    for (const auto& w : workloads) {
      SetBenchConfig cfg;
      cfg.machine = sim::MachineConfig::xeon();
      cfg.key_range = w.range;
      cfg.insert_pct = w.ins;
      cfg.remove_pct = w.rem;
      cfg.unfriendly_thread0 = w.unfriendly;
      cfg.threads = 18;
      cfg.duration_ms = args.scale(2.0, 0.25);
      row.push_back(Table::num(
          bench::run_set_bench(cfg, bench::method_by_name(m)).ops_per_ms,
          0));
    }
    t.add_row(std::move(row));
  }
  t.print(args.csv);
}
