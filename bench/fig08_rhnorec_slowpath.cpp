// Figure 8: RHNOrec slow-path throughput — hardware transactions that bump
// the global timestamp (SlowHTM pane) and software-transaction commits
// (SWSlow pane), per millisecond of time during which software transactions
// were running. Key range 8192, 20% Insert/Remove, Xeon.
//
// Paper finding: software commits climb to thousands per ms while SlowHTM
// commits collapse — the extra software parallelism never pays for the lost
// hardware throughput.
#include <cstdio>
#include <vector>

#include "bench_util/figure.h"

using namespace rtle;
using bench::SetBenchConfig;
using bench::Table;

RTLE_FIGURE("fig08", "Figure 8",
            "RHNOrec slow-path throughput (SlowHTM / SWSlow), "
            "xeon, range 8192, 20% ins/rem") {

  SetBenchConfig cfg;
  cfg.machine = sim::MachineConfig::xeon();
  cfg.key_range = 8192;
  cfg.insert_pct = 20;
  cfg.remove_pct = 20;
  cfg.duration_ms = args.scale(2.0, 0.25);
  cfg.faults = args.faults;
  cfg.retry_policy = args.retry;
  cfg.trace_file = args.trace;
  cfg.latency = args.latency;
  std::vector<std::uint32_t> threads = {1, 2, 4, 8, 12, 16, 18, 24, 28, 36};
  if (args.quick) threads = {1, 8, 18, 36};

  Table table({"threads", "SlowHTM_ops_per_ms", "SWSlow_ops_per_ms",
               "sw_time_frac"});
  const auto spec = bench::method_by_name("RHNOrec");
  for (std::uint32_t t : threads) {
    cfg.threads = t;
    const auto r = bench::run_set_bench(cfg, spec);
    const double total_cycles = cfg.duration_ms * cfg.machine.cycles_per_ms();
    table.add_row({Table::num(std::uint64_t{t}),
                   Table::num(r.sw_phase_htm_ops_per_ms(cfg.machine), 0),
                   Table::num(r.sw_phase_stm_ops_per_ms(cfg.machine), 0),
                   Table::num(r.stats.cycles_sw_running / total_cycles, 3)});
    if (args.stats) {
      std::printf("  [stats] t=%-2u %s\n", t, r.stats.summary().c_str());
    }
    if (args.latency && !r.latency.empty()) {
      std::printf("  [latency] t=%-2u %s\n", t, r.latency.c_str());
    }
  }
  table.print(args.csv);
}
