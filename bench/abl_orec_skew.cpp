// Ablation: orec count vs key-access skew.
//
// FG-TLE's conflict-detection granularity only matters where lock-held and
// speculating executions actually overlap. Under uniform access the paper's
// "more orecs is safer at high thread counts" rule holds; under a hot-spot
// distribution (90% of operations on 10% of the keys), lock holders and
// speculators collide on the same few nodes no matter how fine the orecs
// are, so extra orecs buy little and mostly add lock-path overhead.
#include <cstdio>
#include <vector>

#include "bench_util/figure.h"

using namespace rtle;
using bench::SetBenchConfig;
using bench::Table;

RTLE_FIGURE("abl_orec_skew", "Ablation: orec granularity vs skew",
            "uniform vs hot-spot keys (90% of ops on 10% of "
            "range), xeon, 18 threads, 20% ins/rem, ops/ms") {

  const char* methods[] = {"TLE",         "FG-TLE(1)",    "FG-TLE(16)",
                           "FG-TLE(256)", "FG-TLE(1024)", "FG-TLE(8192)"};

  Table t({"method", "uniform", "hotspot"});
  for (const char* m : methods) {
    std::vector<std::string> row = {m};
    for (const bool hot : {false, true}) {
      SetBenchConfig cfg;
      cfg.machine = sim::MachineConfig::xeon();
      cfg.key_range = 8192;
      cfg.insert_pct = 20;
      cfg.remove_pct = 20;
      cfg.threads = 18;
      cfg.duration_ms = args.scale(2.0, 0.25);
      cfg.cell_tag = hot ? "hotspot" : "uniform";
      if (hot) {
        cfg.hot_access_pct = 90;
        cfg.hot_key_fraction = 0.1;
      }
      row.push_back(Table::num(
          bench::run_set_bench(cfg, bench::method_by_name(m)).ops_per_ms,
          0));
    }
    t.add_row(std::move(row));
  }
  t.print(args.csv);
}
