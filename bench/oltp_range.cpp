// OLTP range scans: throughput of the sharded store as the mean scan
// length grows, ordered-index traffic (30% scans, 10% range transactions)
// on top of a point-access base. Xeon, 8 shards, 18 threads.
//
// Scan length is the new scaling axis the ordered index adds: a scan's
// HTM attempt subscribes *every* shard guard and reads a footprint
// proportional to its length, so longer scans push the elided path into
// capacity aborts and onto the pessimistic gap-protected fallback — the
// second table reports that migration directly (fallback share per scan
// length). Guard families diverge exactly there:
//
//   * TLE        — the fallback scan convoys behind (and ahead of) every
//                  writer on the one exclusive word per shard.
//   * SUX-TLE    — fallback scans take *shared* mode, so they coexist
//                  with each other and with update-mode writers; only the
//                  upgraded write suffix excludes them.
//   * FG-TLE     — per-orec granularity: a scan's footprint strides many
//                  orecs, so where fine granularity wins on point access
//                  it pays on ranges (the orec-vs-footprint tension the
//                  ISSUE names).
//   * Silo-OCC   — no guards; scans validate their read set at commit and
//                  pay with aborts under write traffic.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/figure.h"
#include "oltp/workload.h"
#include "sim/config.h"

using namespace rtle;
using bench::Table;

namespace {

bench::perf::CellMetrics metrics_of(const oltp::WorkloadResult& r,
                                    const sim::MachineConfig& mc,
                                    double duration_ms) {
  bench::perf::CellMetrics m;
  m.ops_per_ms = r.ops_per_ms;
  const double attempts =
      static_cast<double>(r.stats.ops + r.stats.total_aborts());
  m.abort_rate = attempts > 0 ? r.stats.total_aborts() / attempts : 0.0;
  m.lock_fallback = r.stats.lock_fallback_rate();
  const double run_cycles = duration_ms * mc.cycles_per_ms();
  m.time_under_lock =
      run_cycles > 0 ? r.stats.cycles_under_lock / run_cycles : 0.0;
  return m;
}

}  // namespace

RTLE_FIGURE("oltp_range", "OLTP range scans",
            "sharded store throughput vs mean scan length, 30% scans + "
            "10% range transactions, 8 shards, 18 threads, xeon") {
  const double duration = args.scale(2.0, 0.25);

  std::vector<std::uint32_t> lens = {1, 8, 32, 128};
  if (args.quick) lens = {1, 32};

  const char* names[] = {"TLE",         "SUX-TLE",  "SUX-RW-TLE",
                         "FG-TLE(256)", "RHNOrec",  "Silo-OCC"};

  // Closed loop: saturated throughput per mean scan length. The second
  // table reuses the same runs to show where each method's scans ran —
  // elided (one HTM over all shard guards) or on the gap-protected
  // pessimistic fallback.
  std::vector<std::string> header = {"scan len"};
  for (const char* n : names) header.push_back(n);
  Table closed(header);
  Table paths({"scan len", "method", "ops/ms", "scans", "fallback rate"});
  for (std::uint32_t len : lens) {
    std::vector<std::string> row = {Table::num(std::uint64_t{len})};
    for (const char* n : names) {
      oltp::WorkloadConfig cfg;
      cfg.machine = sim::MachineConfig::xeon();
      cfg.threads = 18;
      cfg.shards = 8;
      cfg.keys = 1 << 12;
      cfg.zipf_theta = 0.8;
      cfg.read_pct = 40;
      cfg.multi_pct = 0;
      cfg.range_pct = 30;
      cfg.range_upd_pct = 10;
      cfg.scan_len_mean = len;
      cfg.duration_ms = duration;
      cfg.seed = 23;
      cfg.faults = args.faults;
      cfg.trace_file = args.trace;
      cfg.latency = args.latency;
      const auto r = oltp::run_workload(cfg, bench::method_by_name(n));
      bench::report_cell(n, "xeon/s8/t18/len" + std::to_string(len),
                         metrics_of(r, cfg.machine, duration));
      row.push_back(Table::num(r.ops_per_ms, 0));
      const double scans = static_cast<double>(r.stats.idx_scans);
      paths.add_row({Table::num(std::uint64_t{len}), n,
                     Table::num(r.ops_per_ms, 0),
                     Table::num(r.stats.idx_scans),
                     Table::num(scans > 0
                                    ? r.stats.idx_phantom_aborts / scans
                                    : 0.0,
                                3)});
      if (args.stats) {
        std::printf("  [stats] %-12s len=%-3u %s\n", n, len,
                    r.stats.summary().c_str());
      }
      if (args.latency && !r.latency.empty()) {
        std::printf("  [latency] %-12s len=%-3u %s\n", n, len,
                    r.latency.c_str());
      }
    }
    closed.add_row(std::move(row));
  }
  std::printf("closed loop (saturated ops/ms):\n");
  closed.print(args.csv);
  std::printf(
      "\nscan path split (fallback rate = pessimistic gap-protected scans "
      "per scan):\n");
  paths.print(args.csv);
}
