// OLTP shard sweep: throughput of the sharded transactional key-value
// store as the shard count grows, per elision method, at a fixed thread
// count. Xeon, 18 threads.
//
// The sweep isolates the two ways refined TLE recovers scalability: more
// shards means more independent elidable locks (coarse sharding), while
// RW-TLE / FG-TLE refine *within* each shard lock. A single-shard run is
// the classic one-global-lock configuration; single-lock TLE collapses
// there under the write mix, whereas the refined methods and the sharded
// configurations keep scaling. 10% of operations are cross-shard
// transfers, so larger shard counts also pay the multi-lock commit path.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/figure.h"
#include "oltp/workload.h"
#include "sim/config.h"

using namespace rtle;
using bench::Table;

namespace {

bench::perf::CellMetrics metrics_of(const oltp::WorkloadResult& r,
                                    const sim::MachineConfig& mc,
                                    double duration_ms) {
  bench::perf::CellMetrics m;
  m.ops_per_ms = r.ops_per_ms;
  const double attempts =
      static_cast<double>(r.stats.ops + r.stats.total_aborts());
  m.abort_rate = attempts > 0 ? r.stats.total_aborts() / attempts : 0.0;
  m.lock_fallback = r.stats.lock_fallback_rate();
  const double run_cycles = duration_ms * mc.cycles_per_ms();
  m.time_under_lock =
      run_cycles > 0 ? r.stats.cycles_under_lock / run_cycles : 0.0;
  return m;
}

}  // namespace

RTLE_FIGURE("oltp_shard_sweep", "OLTP shard sweep",
            "sharded store throughput (ops/ms) vs shard count, "
            "50/20/30 read/upsert/transfer mix, capacity-bound "
            "transfers, 18 threads, xeon") {
  const double duration = args.scale(2.0, 0.25);
  const std::uint32_t threads = 18;

  std::vector<std::uint32_t> shard_counts = {1, 2, 4, 8, 16, 32};
  if (args.quick) shard_counts = {1, 4, 16};

  const char* names[] = {"Lock",        "TLE",   "HLE",     "RW-TLE",
                         "FG-TLE(256)", "NOrec", "RHNOrec", "Silo-OCC",
                         "TicToc",      "WaitDie"};

  std::vector<std::string> header = {"shards"};
  for (const char* n : names) header.push_back(n);
  Table table(header);
  for (std::uint32_t shards : shard_counts) {
    std::vector<std::string> row = {Table::num(std::uint64_t{shards})};
    for (const char* n : names) {
      oltp::WorkloadConfig cfg;
      cfg.machine = sim::MachineConfig::xeon();
      cfg.threads = threads;
      cfg.shards = shards;
      // HTM-unfriendly transfers (the Figure-12 recipe applied to OLTP):
      // a 1-line write capacity means every 2-key transfer overflows and
      // must run under the fallback guard(s), while single-key reads and
      // upserts still elide. At one shard the transfer guard is a global
      // lock the whole store convoys behind; sharding confines each
      // transfer to the two shards it touches, and the refined methods
      // additionally keep non-conflicting fast-path operations
      // committing inside a held shard.
      cfg.machine.htm.max_write_lines = 1;
      cfg.keys = 1 << 12;
      cfg.zipf_theta = 0.6;
      cfg.read_pct = 70;
      cfg.multi_pct = 20;
      cfg.multi_min = 2;
      cfg.multi_max = 2;
      cfg.duration_ms = duration;
      cfg.seed = 9;
      cfg.faults = args.faults;
      cfg.trace_file = args.trace;
      cfg.latency = args.latency;
      const auto r = oltp::run_workload(cfg, bench::method_by_name(n));
      bench::report_cell(
          n, "xeon/k4096/t18/s" + std::to_string(shards),
          metrics_of(r, cfg.machine, duration));
      row.push_back(Table::num(r.ops_per_ms, 0));
      if (args.stats) {
        std::printf("  [stats] %-12s s=%-2u %s\n", n, shards,
                    r.stats.summary().c_str());
      }
      if (args.latency && !r.latency.empty()) {
        std::printf("  [latency] %-10s s=%-2u %s\n", n, shards,
                    r.latency.c_str());
      }
    }
    table.add_row(std::move(row));
  }
  table.print(args.csv);
}
