// Ablation: data-structure generality — the same synchronization methods
// over three different set implementations (AVL tree, skip list, chained
// hash table).
//
// §3 motivates RW-TLE with critical sections that are read-only in practice
// or carry a long read prefix: tree and skip-list operations traverse many
// nodes before the first write, while a hash-table operation reaches its
// write almost immediately. The refined-TLE advantage should therefore be
// structure-dependent in exactly that order.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util/figure.h"
#include "ds/avl.h"
#include "ds/hashmap.h"
#include "ds/skiplist.h"
#include "sim/env.h"

using namespace rtle;
using bench::Table;
using runtime::ThreadCtx;
using runtime::TxContext;

namespace {

struct RunResult {
  double ops_per_ms = 0;
  double slow_share = 0;  // slow-path commits / ops
  bench::perf::CellMetrics metrics;
};

template <typename SetupFn, typename OpFn>
RunResult run_structure(const char* method_name, std::uint32_t threads,
                        double duration_ms, SetupFn&& setup, OpFn&& op) {
  SimScope sim(sim::MachineConfig::xeon());
  auto method = bench::method_by_name(method_name).make();
  method->prepare(threads);
  setup();

  const auto& mc = sim.sched.machine();
  const std::uint64_t t_end =
      sim.sched.epoch() +
      static_cast<std::uint64_t>(duration_ms * mc.cycles_per_ms());
  std::vector<std::unique_ptr<ThreadCtx>> ctxs;
  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    ctxs.push_back(std::make_unique<ThreadCtx>(tid, 300 + tid));
  }
  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    ThreadCtx* th = ctxs[tid].get();
    sim.sched.spawn(
        [&, th] {
          while (cur_sched().now() < t_end) op(*method, *th);
        },
        tid);
  }
  sim.sched.run();
  RunResult r;
  const runtime::MethodStats& st = method->stats();
  r.ops_per_ms = st.ops / duration_ms;
  r.slow_share =
      st.ops == 0 ? 0 : static_cast<double>(st.commit_slow_htm) / st.ops;
  r.metrics.ops_per_ms = r.ops_per_ms;
  const double attempts = static_cast<double>(st.ops + st.total_aborts());
  r.metrics.abort_rate = attempts > 0 ? st.total_aborts() / attempts : 0.0;
  r.metrics.lock_fallback = st.lock_fallback_rate();
  const double run_cycles = duration_ms * mc.cycles_per_ms();
  r.metrics.time_under_lock =
      run_cycles > 0 ? st.cycles_under_lock / run_cycles : 0.0;
  return r;
}

}  // namespace

RTLE_FIGURE("abl_structures", "Ablation: structure generality",
            "AVL vs skip list vs hash table, xeon, 18 threads, "
            "20% ins / 20% rem / 60% lookup, range 8192; "
            "ops/ms (slow-path share)") {

  constexpr std::uint32_t kThreads = 18;
  constexpr std::uint64_t kRange = 8192;
  const double duration = args.scale(2.0, 0.25);
  const char* methods[] = {"Lock", "TLE", "RW-TLE", "FG-TLE(8192)"};

  Table table({"structure", "Lock", "TLE", "RW-TLE", "FG-TLE(8192)"});

  // --- AVL tree ---
  {
    std::vector<std::string> row = {"avl-tree"};
    for (const char* m : methods) {
      ds::AvlSet set(kRange + 64 * kThreads + 64, kThreads);
      auto r = run_structure(
          m, kThreads, duration,
          [&] {
            for (std::uint64_t k = 0; k < kRange; k += 2) set.insert_meta(k);
          },
          [&](runtime::SyncMethod& method, ThreadCtx& th) {
            set.reserve_nodes(th, 4);
            const std::uint64_t key = th.rng.below(kRange);
            const std::uint32_t r = th.rng.below(100);
            auto cs = [&](TxContext& ctx) {
              if (r < 20) {
                set.insert(ctx, key);
              } else if (r < 40) {
                set.remove(ctx, key);
              } else {
                set.contains(ctx, key);
              }
            };
            method.execute(th, cs);
          });
      bench::report_cell(m, "xeon/r8192/i20r20/t18/avl", r.metrics);
      row.push_back(Table::num(r.ops_per_ms, 0) + " (" +
                    Table::num(r.slow_share * 100, 1) + "%)");
    }
    table.add_row(std::move(row));
  }

  // --- Skip list ---
  {
    std::vector<std::string> row = {"skip-list"};
    for (const char* m : methods) {
      ds::SkipListSet set(kRange + 64 * kThreads + 64, kThreads);
      auto r = run_structure(
          m, kThreads, duration,
          [&] {
            // Prefill through a raw context on a setup fiber.
          },
          [&](runtime::SyncMethod& method, ThreadCtx& th) {
            set.reserve_nodes(th, 2);
            const std::uint64_t key = th.rng.below(kRange);
            const std::uint32_t r = th.rng.below(100);
            auto cs = [&](TxContext& ctx) {
              if (r < 20) {
                set.insert(ctx, key);
              } else if (r < 40) {
                set.remove(ctx, key);
              } else {
                set.contains(ctx, key);
              }
            };
            method.execute(th, cs);
          });
      bench::report_cell(m, "xeon/r8192/i20r20/t18/skiplist", r.metrics);
      row.push_back(Table::num(r.ops_per_ms, 0) + " (" +
                    Table::num(r.slow_share * 100, 1) + "%)");
    }
    table.add_row(std::move(row));
  }

  // --- Chained hash table (write reached almost immediately) ---
  {
    std::vector<std::string> row = {"hash-table"};
    for (const char* m : methods) {
      ds::TxHashMap map(kRange, kRange + 64 * kThreads + 64, kThreads);
      auto r = run_structure(
          m, kThreads, duration, [] {},
          [&](runtime::SyncMethod& method, ThreadCtx& th) {
            map.reserve_nodes(th, 2);
            const std::uint64_t key = th.rng.below(kRange);
            const std::uint32_t r = th.rng.below(100);
            auto cs = [&](TxContext& ctx) {
              if (r < 20) {
                bool ins = false;
                std::uint64_t* v = map.find_or_insert(ctx, key, ins);
                ctx.store(v, ctx.load(v) + 1);
              } else if (r < 40) {
                map.erase(ctx, key);
              } else {
                std::uint64_t* v = map.find(ctx, key);
                if (v != nullptr) (void)ctx.load(v);
              }
            };
            method.execute(th, cs);
          });
      bench::report_cell(m, "xeon/r8192/i20r20/t18/hashmap", r.metrics);
      row.push_back(Table::num(r.ops_per_ms, 0) + " (" +
                    Table::num(r.slow_share * 100, 1) + "%)");
    }
    table.add_row(std::move(row));
  }

  table.print(args.csv);
}
