// google-benchmark micro-benchmarks of the simulator substrate itself:
// these measure *real* (host) time per operation — they exist to keep the
// simulation overhead honest (a simulated memory access should cost well
// under a microsecond of host time, or the figure sweeps become unusable).
#include <benchmark/benchmark.h>

#include "htm/htm.h"
#include "mem/shim.h"
#include "sim/ambient.h"
#include "sim/env.h"
#include "sim/fiber.h"
#include "sim/rng.h"
#include "util/flat_hash.h"

namespace {

using namespace rtle;

void BM_FiberSwitch(benchmark::State& state) {
  // Ping-pong between a fiber and the main context.
  sim::Context main_ctx;
  bool stop = false;
  sim::Fiber* fp = nullptr;
  sim::Fiber fiber([&] {
    while (!stop) fp->switch_to(main_ctx);
  });
  fp = &fiber;
  fiber.return_to = &main_ctx;
  for (auto _ : state) {
    fiber.switch_from(main_ctx);  // one round trip = two context switches
  }
  stop = true;
  fiber.switch_from(main_ctx);
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_FiberSwitch);

void BM_SchedulerAdvance(benchmark::State& state) {
  SimScope sim(sim::MachineConfig::xeon());
  std::uint64_t n = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SimScope inner(sim::MachineConfig::xeon());
    state.ResumeTiming();
    for (int t = 0; t < 4; ++t) {
      inner.sched.spawn(
          [&] {
            for (int i = 0; i < 2500; ++i) {
              cur_sched().advance(10);
              ++n;
            }
          },
          t);
    }
    inner.sched.run();
  }
  benchmark::DoNotOptimize(n);
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerAdvance)->Unit(benchmark::kMillisecond);

void BM_PlainLoad(benchmark::State& state) {
  SimScope sim(sim::MachineConfig::xeon());
  alignas(64) static std::uint64_t word = 7;
  std::uint64_t sink = 0;
  std::uint64_t iters = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SimScope inner(sim::MachineConfig::xeon());
    state.ResumeTiming();
    inner.sched.spawn(
        [&] {
          for (int i = 0; i < 10000; ++i) sink += mem::plain_load(&word);
        },
        0);
    inner.sched.run();
    iters += 10000;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(iters));
}
BENCHMARK(BM_PlainLoad)->Unit(benchmark::kMillisecond);

void BM_HtmRoundTrip(benchmark::State& state) {
  // begin + 8 transactional accesses + commit.
  alignas(64) static std::uint64_t data[64];
  std::uint64_t iters = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SimScope inner(sim::MachineConfig::xeon());
    state.ResumeTiming();
    inner.sched.spawn(
        [&] {
          htm::Tx tx(0);
          for (int i = 0; i < 2000; ++i) {
            try {
              inner.htm.begin(tx);
              for (int j = 0; j < 8; ++j) {
                inner.htm.tx_store(tx, &data[j * 8], j);
              }
              inner.htm.commit(tx);
            } catch (const htm::HtmAbort&) {
              // spurious abort: the price of emulating best-effort HTM
            }
          }
        },
        0);
    inner.sched.run();
    iters += 2000;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(iters));
}
BENCHMARK(BM_HtmRoundTrip)->Unit(benchmark::kMillisecond);

void BM_PlainLoadForcedMask(benchmark::State& state) {
  // Same loop as BM_PlainLoad but with every ambient-dispatch bit forced on,
  // so each access takes the slow branch, null-checks the (absent) fault
  // plan / trace session / check session, and proceeds. Measures the cost
  // the single-word dispatch removes from the common case: the gap between
  // this and BM_PlainLoad is the win.
  SimScope sim(sim::MachineConfig::xeon());
  ambient::force(ambient::kFault | ambient::kTrace | ambient::kCheck);
  alignas(64) static std::uint64_t word = 7;
  std::uint64_t sink = 0;
  std::uint64_t iters = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SimScope inner(sim::MachineConfig::xeon());
    state.ResumeTiming();
    inner.sched.spawn(
        [&] {
          for (int i = 0; i < 10000; ++i) sink += mem::plain_load(&word);
        },
        0);
    inner.sched.run();
    iters += 10000;
  }
  ambient::force(0);
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(iters));
}
BENCHMARK(BM_PlainLoadForcedMask)->Unit(benchmark::kMillisecond);

void BM_FlatHashUpsert(benchmark::State& state) {
  util::FlatHash<std::uint64_t> h(1 << 12);
  sim::Rng rng(1);
  for (auto _ : state) {
    h[rng.below(100000)] += 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatHashUpsert);

void BM_FastHash(benchmark::State& state) {
  std::uint64_t x = 0x123456789abcdefULL;
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc += util::fast_hash(x += 64, 8192);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FastHash);

void BM_Rng(benchmark::State& state) {
  sim::Rng rng(9);
  std::uint64_t acc = 0;
  for (auto _ : state) acc += rng.next();
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Rng);

}  // namespace

BENCHMARK_MAIN();
