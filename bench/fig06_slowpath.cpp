// Figure 6: slow-path throughput for the refined TLE variants — commits of
// instrumented hardware transactions while the lock is held (SlowHTM pane)
// and lock-based critical sections (Lock pane), both per millisecond of
// lock-held time. Key range 8192, 20% Insert/Remove, Xeon.
#include <cstdio>
#include <vector>

#include "bench_util/figure.h"

using namespace rtle;
using bench::SetBenchConfig;
using bench::Table;

RTLE_FIGURE("fig06", "Figure 6",
            "slow-path throughput of refined TLE variants (SlowHTM and Lock "
            "panes), xeon, range 8192, 20% ins/rem") {

  SetBenchConfig cfg;
  cfg.machine = sim::MachineConfig::xeon();
  cfg.key_range = 8192;
  cfg.insert_pct = 20;
  cfg.remove_pct = 20;
  cfg.duration_ms = args.scale(2.0, 0.25);
  cfg.faults = args.faults;
  cfg.retry_policy = args.retry;
  cfg.htm_health = args.htm_health;
  cfg.trace_file = args.trace;
  cfg.latency = args.latency;
  std::vector<std::uint32_t> threads = {1, 2, 4, 8, 12, 16, 18, 24, 28, 36};
  if (args.quick) threads = {1, 8, 18, 36};

  auto methods = bench::refined_methods();
  std::vector<std::string> header = {"threads"};
  for (const auto& m : methods) header.push_back(m.name);

  Table slow_htm(header);
  Table lock_tp(header);
  for (std::uint32_t t : threads) {
    cfg.threads = t;
    std::vector<std::string> row_s = {Table::num(std::uint64_t{t})};
    std::vector<std::string> row_l = row_s;
    for (const auto& m : methods) {
      const auto r = bench::run_set_bench(cfg, m);
      row_s.push_back(Table::num(r.slow_htm_ops_per_ms(cfg.machine), 0));
      row_l.push_back(Table::num(r.lock_path_ops_per_ms(cfg.machine), 0));
      if (args.latency && !r.latency.empty()) {
        std::printf("  [latency] %-12s t=%-2u %s\n", m.name.c_str(), t,
                    r.latency.c_str());
      }
    }
    slow_htm.add_row(std::move(row_s));
    lock_tp.add_row(std::move(row_l));
  }
  std::printf("SlowHTM commits per ms of lock-held time:\n");
  slow_htm.print(args.csv);
  std::printf("\nLock-based critical sections per ms of lock-held time:\n");
  lock_tp.print(args.csv);
}
