// Ablation: the hybrid-TM lineage — NOrec (software only), Hybrid NOrec
// (unconditional clock bump on every hardware commit, ASPLOS'11), RHNOrec
// (bump only while software transactions run, TRANSACT'14) and refined TLE.
//
// The paper's §2 argues RHNOrec's remaining weakness is the shared clock;
// Hybrid NOrec makes the point a fortiori: with *every* hardware commit
// bumping the clock, hardware transactions conflict with each other on one
// word even in the total absence of software transactions. Expect the
// ordering refined TLE > RHNOrec > HybridNOrec (> NOrec single-threaded),
// with HybridNOrec degrading earliest as thread count grows.
#include <cstdio>
#include <vector>

#include "bench_util/figure.h"

using namespace rtle;
using bench::SetBenchConfig;
using bench::Table;

RTLE_FIGURE("abl_hybrid_tm", "Ablation: hybrid-TM lineage",
            "NOrec vs HybridNOrec vs RHNOrec vs refined TLE, "
            "xeon, range 8192, 20% ins/rem, ops/ms") {

  SetBenchConfig cfg;
  cfg.machine = sim::MachineConfig::xeon();
  cfg.key_range = 8192;
  cfg.insert_pct = 20;
  cfg.remove_pct = 20;
  cfg.duration_ms = args.scale(2.0, 0.25);

  const char* methods[] = {"NOrec", "HybridNOrec", "RHNOrec", "TLE",
                           "FG-TLE(8192)"};
  std::vector<std::uint32_t> threads = {1, 2, 4, 8, 12, 18, 24, 36};
  if (args.quick) threads = {1, 8, 18, 36};

  std::vector<std::string> header = {"threads"};
  for (const char* m : methods) header.push_back(m);
  Table table(header);
  for (std::uint32_t t : threads) {
    cfg.threads = t;
    std::vector<std::string> row = {Table::num(std::uint64_t{t})};
    for (const char* m : methods) {
      row.push_back(Table::num(
          bench::run_set_bench(cfg, bench::method_by_name(m)).ops_per_ms,
          0));
    }
    table.add_row(std::move(row));
  }
  table.print(args.csv);
}
