// Figure 11: bank-accounts micro-benchmark — 256 line-padded accounts,
// every critical section transfers a random amount between two random
// accounts (read-modify-write; no read-only executions exist). Xeon.
//
// Paper findings: TLE scales to ~12 threads then degrades on collisions;
// refined TLE variants with many orecs keep scaling (they only block
// transactions that truly conflict with the lock holder); NOrec and RHNOrec
// perform poorly because every transaction writes.
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "bench_util/figure.h"
#include "ds/bank.h"
#include "sim/env.h"
#include "sim/faultplan.h"
#include "trace/export.h"
#include "trace/session.h"

using namespace rtle;
using bench::Table;
using runtime::ThreadCtx;
using runtime::TxContext;

namespace {

struct BankResult {
  double ops_per_ms = 0;
  bench::perf::CellMetrics metrics;
  std::string stats_summary;
  std::string latency;
};

BankResult run_bank(const sim::MachineConfig& mc, std::uint32_t threads,
                    double duration_ms, const runtime::MethodSpec& spec,
                    std::uint64_t seed, const bench::BenchArgs& args) {
  SimScope sim(mc);
  sim::FaultPlan plan;
  std::optional<sim::FaultPlanScope> fault_scope;
  if (!args.faults.empty()) {
    plan = sim::FaultPlan::parse(args.faults);
    fault_scope.emplace(&plan);
  }
  // Observability (last traced cell wins the --trace file, as in setbench).
  std::optional<trace::TraceSession> tracer;
  if (!args.trace.empty() || args.latency) tracer.emplace();
  ds::BankAccounts bank(256, 10000);
  auto method = spec.make();
  method->prepare(threads);
  bench::configure_method_resilience(*method, args.retry, args.htm_health);

  const std::uint64_t duration_cycles =
      static_cast<std::uint64_t>(duration_ms * mc.cycles_per_ms());
  const std::uint64_t t_end = sim.sched.epoch() + duration_cycles;

  std::vector<std::unique_ptr<ThreadCtx>> ctxs;
  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    ctxs.push_back(std::make_unique<ThreadCtx>(tid, seed * 131 + tid));
  }
  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    ThreadCtx* th = ctxs[tid].get();
    sim.sched.spawn(
        [&, th] {
          auto& sched = cur_sched();
          while (sched.now() < t_end) {
            // Pick accounts and amount *before* entering the critical
            // section, as the paper specifies.
            const std::size_t from = th->rng.below(bank.size());
            std::size_t to = th->rng.below(bank.size() - 1);
            if (to >= from) ++to;
            const std::uint64_t amount = th->rng.below(100) + 1;
            auto cs = [&](TxContext& ctx) {
              bank.transfer(ctx, from, to, amount);
            };
            method->execute(*th, cs);
          }
        },
        tid);
  }
  sim.sched.run();
  BankResult r;
  const runtime::MethodStats& st = method->stats();
  r.ops_per_ms = st.ops / duration_ms;
  r.metrics.ops_per_ms = r.ops_per_ms;
  const double attempts = static_cast<double>(st.ops + st.total_aborts());
  r.metrics.abort_rate = attempts > 0 ? st.total_aborts() / attempts : 0.0;
  r.metrics.lock_fallback = st.lock_fallback_rate();
  const double run_cycles = duration_ms * mc.cycles_per_ms();
  r.metrics.time_under_lock =
      run_cycles > 0 ? st.cycles_under_lock / run_cycles : 0.0;
  if (args.stats) r.stats_summary = method->stats().summary();
  if (tracer.has_value()) {
    r.latency = tracer->latency_summary();
    if (!args.trace.empty() &&
        !trace::write_chrome_trace(*tracer, args.trace)) {
      std::fprintf(stderr, "rtle bench: cannot write trace to '%s'\n",
                   args.trace.c_str());
    }
  }
  return r;
}

}  // namespace

RTLE_FIGURE("fig11", "Figure 11",
            "bank-accounts transfer throughput (ops/ms), 256 "
            "padded accounts, xeon") {

  const double duration = args.scale(2.0, 0.25);
  std::vector<std::uint32_t> threads = {1, 2, 4, 6, 8, 12, 18, 24, 28, 36};
  if (args.quick) threads = {1, 8, 18, 36};

  const char* names[] = {"Lock",        "TLE",          "RW-TLE",
                         "FG-TLE(1)",   "FG-TLE(16)",   "FG-TLE(256)",
                         "FG-TLE(1024)", "FG-TLE(4096)", "FG-TLE(8192)",
                         "NOrec",       "RHNOrec"};

  std::vector<std::string> header = {"threads"};
  for (const char* n : names) header.push_back(n);
  Table table(header);
  for (std::uint32_t t : threads) {
    std::vector<std::string> row = {Table::num(std::uint64_t{t})};
    for (const char* n : names) {
      const auto r = run_bank(sim::MachineConfig::xeon(), t, duration,
                              bench::method_by_name(n), 3, args);
      bench::report_cell(n, "xeon/bank256/t" + std::to_string(t), r.metrics);
      row.push_back(Table::num(r.ops_per_ms, 0));
      if (args.stats) {
        std::printf("  [stats] %-14s t=%-2u %s\n", n, t,
                    r.stats_summary.c_str());
      }
      if (args.latency && !r.latency.empty()) {
        std::printf("  [latency] %-12s t=%-2u %s\n", n, t,
                    r.latency.c_str());
      }
    }
    table.add_row(std::move(row));
  }
  table.print(args.csv);
}
