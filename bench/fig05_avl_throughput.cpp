// Figure 5: AVL-tree set throughput on Core i7 and Xeon, normalized to a
// single-threaded lock-based execution (speedup), for key ranges
// {8192, 65536} and Insert:Remove:Find mixes {0:0:100, 10:10:80, 20:20:60,
// 50:50:0}, across Lock, NOrec, RHNOrec, TLE, RW-TLE and FG-TLE(N).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util/figure.h"

using namespace rtle;
using bench::SetBenchConfig;
using bench::Table;

RTLE_FIGURE("fig05", "Figure 5",
            "AVL set speedup vs. threads (normalized to Lock @ 1 "
            "thread)") {
  const double duration = args.scale(2.0, 0.25);

  struct MachineGrid {
    sim::MachineConfig mc;
    std::vector<std::uint32_t> threads;
  };
  std::vector<MachineGrid> machines = {
      {sim::MachineConfig::corei7(), {1, 2, 4, 6, 8}},
      {sim::MachineConfig::xeon(), {1, 2, 4, 8, 12, 16, 18, 24, 28, 36}},
  };
  if (args.quick) {
    machines[0].threads = {1, 4, 8};
    machines[1].threads = {1, 8, 18, 36};
  }
  const std::uint64_t ranges[] = {8192, 65536};
  const std::pair<std::uint32_t, std::uint32_t> mixes[] = {
      {0, 0}, {10, 10}, {20, 20}, {50, 50}};

  auto methods = bench::paper_methods();

  for (const MachineGrid& mg : machines) {
    for (std::uint64_t range : ranges) {
      for (auto [ins, rem] : mixes) {
        SetBenchConfig cfg;
        cfg.machine = mg.mc;
        cfg.key_range = range;
        cfg.insert_pct = ins;
        cfg.remove_pct = rem;
        cfg.duration_ms = duration;
        cfg.faults = args.faults;
        cfg.retry_policy = args.retry;
        cfg.htm_health = args.htm_health;
        cfg.trace_file = args.trace;
        cfg.latency = args.latency;

        // Normalization baseline: Lock at 1 thread in this setup.
        cfg.threads = 1;
        const double base =
            bench::run_set_bench(cfg, bench::method_by_name("Lock"))
                .ops_per_ms;

        std::printf("machine=%s key_range=%llu mix=%u:%u:%u (I:R:F), "
                    "Lock@1 = %.0f ops/ms\n",
                    mg.mc.name.c_str(),
                    static_cast<unsigned long long>(range), ins, rem,
                    100 - ins - rem, base);

        std::vector<std::string> header = {"threads"};
        for (const auto& m : methods) header.push_back(m.name);
        Table table(header);
        for (std::uint32_t t : mg.threads) {
          cfg.threads = t;
          std::vector<std::string> row = {Table::num(std::uint64_t{t})};
          for (const auto& m : methods) {
            const auto r = bench::run_set_bench(cfg, m);
            row.push_back(Table::num(r.ops_per_ms / base, 2));
            if (args.stats) {
              std::printf("  [stats] %-14s t=%-2u %s\n", m.name.c_str(), t,
                          r.stats.summary().c_str());
            }
            if (args.latency && !r.latency.empty()) {
              std::printf("  [latency] %-12s t=%-2u %s\n", m.name.c_str(), t,
                          r.latency.c_str());
            }
          }
          table.add_row(std::move(row));
        }
        table.print(args.csv);
        std::printf("\n");
      }
    }
  }
}
