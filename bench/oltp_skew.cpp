// OLTP skew sweep: throughput and open-loop latency of the sharded store
// as key popularity sharpens (Zipf theta). Xeon, 8 shards, 18 threads.
//
// Skew concentrates both conflicts and load: hot keys collide inside
// their shard (aborts for the HTM paths, serialization for the lock),
// and hot *shards* unbalance the sharding itself. The closed-loop table
// records saturated throughput; the open-loop table drives a fixed
// arrival rate below saturation and reports sojourn time (arrival ->
// completion, queueing included) at p50/p99 — the paper's latency story
// told through the simulator's deterministic clock.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/figure.h"
#include "oltp/workload.h"
#include "sim/config.h"

using namespace rtle;
using bench::Table;

namespace {

bench::perf::CellMetrics metrics_of(const oltp::WorkloadResult& r,
                                    const sim::MachineConfig& mc,
                                    double duration_ms) {
  bench::perf::CellMetrics m;
  m.ops_per_ms = r.ops_per_ms;
  const double attempts =
      static_cast<double>(r.stats.ops + r.stats.total_aborts());
  m.abort_rate = attempts > 0 ? r.stats.total_aborts() / attempts : 0.0;
  m.lock_fallback = r.stats.lock_fallback_rate();
  const double run_cycles = duration_ms * mc.cycles_per_ms();
  m.time_under_lock =
      run_cycles > 0 ? r.stats.cycles_under_lock / run_cycles : 0.0;
  return m;
}

oltp::WorkloadConfig base_config(const bench::BenchArgs& args,
                                 double duration) {
  oltp::WorkloadConfig cfg;
  cfg.machine = sim::MachineConfig::xeon();
  cfg.threads = 18;
  cfg.shards = 8;
  cfg.keys = 1 << 12;
  cfg.read_pct = 80;
  cfg.multi_pct = 10;
  cfg.duration_ms = duration;
  cfg.seed = 17;
  cfg.faults = args.faults;
  cfg.trace_file = args.trace;
  cfg.latency = args.latency;
  return cfg;
}

std::string theta_tag(double theta) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "z%.2f", theta);
  return buf;
}

}  // namespace

RTLE_FIGURE("oltp_skew", "OLTP skew sweep",
            "sharded store throughput and open-loop sojourn vs Zipf "
            "theta, 8 shards, 18 threads, xeon") {
  const double duration = args.scale(2.0, 0.25);

  std::vector<double> thetas = {0.0, 0.5, 0.8, 0.99, 1.2};
  if (args.quick) thetas = {0.0, 0.99};

  const char* names[] = {"TLE",     "RW-TLE",   "FG-TLE(256)",
                         "RHNOrec", "Silo-OCC", "TicToc"};

  // Closed loop: saturated throughput per skew level.
  std::vector<std::string> header = {"theta"};
  for (const char* n : names) header.push_back(n);
  Table closed(header);
  for (double theta : thetas) {
    std::vector<std::string> row = {Table::num(theta, 2)};
    for (const char* n : names) {
      oltp::WorkloadConfig cfg = base_config(args, duration);
      cfg.zipf_theta = theta;
      const auto r = oltp::run_workload(cfg, bench::method_by_name(n));
      bench::report_cell(n, "xeon/s8/t18/" + theta_tag(theta),
                         metrics_of(r, cfg.machine, duration));
      row.push_back(Table::num(r.ops_per_ms, 0));
      if (args.stats) {
        std::printf("  [stats] %-12s z=%.2f %s\n", n, theta,
                    r.stats.summary().c_str());
      }
    }
    closed.add_row(std::move(row));
  }
  std::printf("closed loop (saturated ops/ms):\n");
  closed.print(args.csv);

  // Range column: the same sweep with 15% of the mix redirected onto the
  // ordered index (Store::scan, mean length 16, Zipf-anchored start).
  // Skew now concentrates *scan anchors* as well as point keys, so hot
  // ranges collide with hot writers — the shape where the gap-protected
  // fallback and the guard family start to matter (see oltp_range for the
  // full scan-length ladder).
  Table ranged(header);
  for (double theta : thetas) {
    std::vector<std::string> row = {Table::num(theta, 2)};
    for (const char* n : names) {
      oltp::WorkloadConfig cfg = base_config(args, duration);
      cfg.zipf_theta = theta;
      cfg.read_pct = 65;
      cfg.range_pct = 15;
      cfg.scan_len_mean = 16;
      const auto r = oltp::run_workload(cfg, bench::method_by_name(n));
      bench::report_cell(n, "xeon/s8/t18/range/" + theta_tag(theta),
                         metrics_of(r, cfg.machine, duration));
      row.push_back(Table::num(r.ops_per_ms, 0));
      if (args.stats) {
        std::printf("  [stats] %-12s range z=%.2f %s\n", n, theta,
                    r.stats.summary().c_str());
      }
    }
    ranged.add_row(std::move(row));
  }
  std::printf("closed loop, 15%% range scans (saturated ops/ms):\n");
  ranged.print(args.csv);

  // Open loop: fixed arrival rate well under saturation; sojourn time is
  // the latency metric (ops/ms in these cells just echoes the rate).
  const double rate = args.scale(400.0, 200.0);  // arrivals per sim ms
  Table open({"theta", "method", "ops/ms", "p50 (cyc)", "p99 (cyc)"});
  for (double theta : thetas) {
    for (const char* n : names) {
      oltp::WorkloadConfig cfg = base_config(args, duration);
      cfg.zipf_theta = theta;
      cfg.arrivals_per_ms = rate;
      const auto r = oltp::run_workload(cfg, bench::method_by_name(n));
      // Throughput in an open-loop cell is rate-bound by construction;
      // the cell still gates abort/fallback drift under queueing.
      bench::report_cell(n, "xeon/s8/t18/open/" + theta_tag(theta),
                         metrics_of(r, cfg.machine, duration));
      open.add_row({Table::num(theta, 2), n, Table::num(r.ops_per_ms, 0),
                    Table::num(r.sojourn_p50), Table::num(r.sojourn_p99)});
    }
  }
  std::printf("open loop (%0.f arrivals/ms, sojourn percentiles):\n", rate);
  open.print(args.csv);
}
