// Ablation: instrumentation-barrier call cost.
//
// The paper repeatedly blames GCC's lack of barrier inlining for refined
// TLE's lock-path overhead (§6.2.1, §6.4.2, §7: "any reduction in the
// instrumentation overhead, for example via inlining and compiler
// optimizations, will significantly improve the performance of the refined
// TLE solutions"). Here we sweep the per-barrier call cost from 0 (perfect
// inlining) to 4x the default and report both total throughput and the
// Fig-7-style relative time under lock.
#include <cstdio>
#include <vector>

#include "bench_util/figure.h"

using namespace rtle;
using bench::SetBenchConfig;
using bench::Table;

RTLE_FIGURE("abl_barrier_cost", "Ablation: barrier cost",
            "refined TLE vs per-barrier call cost (0 = perfectly "
            "inlined), xeon, range 8192, 20% ins/rem, 18 threads") {

  SetBenchConfig cfg;
  cfg.machine = sim::MachineConfig::xeon();
  cfg.key_range = 8192;
  cfg.insert_pct = 20;
  cfg.remove_pct = 20;
  cfg.threads = 18;
  cfg.duration_ms = args.scale(2.0, 0.25);

  const char* methods[] = {"RW-TLE", "FG-TLE(1)", "FG-TLE(8192)"};
  Table table({"barrier_cycles", "method", "ops_per_ms",
               "rel_time_under_lock"});

  for (std::uint32_t barrier : {0u, 6u, 12u, 24u, 48u}) {
    cfg.machine.cost.barrier_call = barrier;
    cfg.cell_tag = "b" + std::to_string(barrier);
    const double lock_cs =
        bench::run_set_bench(cfg, bench::method_by_name("Lock"))
            .avg_cycles_under_lock();
    for (const char* m : methods) {
      const auto r = bench::run_set_bench(cfg, bench::method_by_name(m));
      table.add_row({Table::num(std::uint64_t{barrier}), m,
                     Table::num(r.ops_per_ms, 0),
                     Table::num(lock_cs > 0
                                    ? r.avg_cycles_under_lock() / lock_cs
                                    : 0.0,
                                2)});
    }
  }
  table.print(args.csv);
}
