// Ablation: HTM read-set capacity vs tree size.
//
// Best-effort HTMs bound the readable footprint; once a critical section's
// traversal exceeds it, speculation *cannot* succeed and (per the
// no-retry-hint policy) execution falls to the lock. TLE then serializes;
// refined TLE's slow path is equally capacity-bound, so the interesting
// question is how quickly each variant degrades toward the Lock baseline as
// the capacity shrinks below the working set.
#include <cstdio>
#include <vector>

#include "bench_util/figure.h"

using namespace rtle;
using bench::SetBenchConfig;
using bench::Table;

RTLE_FIGURE("abl_capacity", "Ablation: HTM read capacity",
            "AVL range 65536 (deep traversals), xeon, 18 threads, "
            "20% ins/rem; ops/ms and lock-fallback %") {

  const char* methods[] = {"Lock", "TLE", "RW-TLE", "FG-TLE(8192)"};

  Table t({"read_capacity_lines", "method", "ops_per_ms", "fallback_pct",
           "capacity_aborts"});
  for (std::uint32_t cap : {16u, 32u, 64u, 128u, 8192u}) {
    for (const char* m : methods) {
      SetBenchConfig cfg;
      cfg.machine = sim::MachineConfig::xeon();
      cfg.machine.htm.max_read_lines = cap;
      cfg.cell_tag = "cap" + std::to_string(cap);
      cfg.key_range = 65536;
      cfg.insert_pct = 20;
      cfg.remove_pct = 20;
      cfg.threads = 18;
      cfg.duration_ms = args.scale(2.0, 0.25);
      const auto r = bench::run_set_bench(cfg, bench::method_by_name(m));
      t.add_row({Table::num(std::uint64_t{cap}), m,
                 Table::num(r.ops_per_ms, 0),
                 Table::num(r.stats.lock_fallback_rate() * 100, 2),
                 Table::num(r.stats.abort_cause[static_cast<int>(
                     htm::AbortCause::kCapacity)])});
    }
  }
  t.print(args.csv);
}
