// OLTP capacity sweep: max sustainable load under a sojourn-time SLO.
//
// An open-loop service does not degrade gracefully on its own: past the
// saturation point the queue grows without bound and every sojourn
// percentile diverges. This figure sweeps the offered arrival rate per
// synchronization method and reports the p99 sojourn at each rate — the
// largest rate whose p99 still meets the SLO is that method's usable
// capacity. The "Adaptive" column runs the same store (TLE guards) behind
// rtle::admit admission control: instead of diverging past saturation it
// sheds the excess and holds the *served* traffic's p99 inside the SLO at
// every offered rate, trading goodput for bounded latency.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/figure.h"
#include "oltp/workload.h"
#include "sim/config.h"

using namespace rtle;
using bench::Table;

namespace {

/// p99 sojourn SLO, simulated cycles (~22us on the 2.3GHz xeon model).
constexpr std::uint64_t kSloCycles = 50'000;

bench::perf::CellMetrics metrics_of(const oltp::WorkloadResult& r,
                                    const sim::MachineConfig& mc,
                                    double duration_ms) {
  bench::perf::CellMetrics m;
  m.ops_per_ms = r.ops_per_ms;
  const double attempts =
      static_cast<double>(r.stats.ops + r.stats.total_aborts());
  m.abort_rate = attempts > 0 ? r.stats.total_aborts() / attempts : 0.0;
  m.lock_fallback = r.stats.lock_fallback_rate();
  const double run_cycles = duration_ms * mc.cycles_per_ms();
  m.time_under_lock =
      run_cycles > 0 ? r.stats.cycles_under_lock / run_cycles : 0.0;
  return m;
}

oltp::WorkloadConfig base_config(const bench::BenchArgs& args,
                                 double duration) {
  oltp::WorkloadConfig cfg;
  cfg.machine = sim::MachineConfig::xeon();
  cfg.threads = 18;
  cfg.shards = 8;
  cfg.keys = 1 << 12;
  cfg.zipf_theta = 0.8;
  cfg.read_pct = 80;
  cfg.multi_pct = 10;
  cfg.duration_ms = duration;
  cfg.seed = 23;
  cfg.faults = args.faults;
  cfg.trace_file = args.trace;
  cfg.latency = args.latency;
  return cfg;
}

std::string rate_tag(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "r%gk", rate / 1000.0);
  return buf;
}

}  // namespace

RTLE_FIGURE("oltp_capacity", "OLTP capacity under SLO",
            "arrival-rate sweep: p99 sojourn per method vs offered load, "
            "and admission control holding the SLO past saturation") {
  const double duration = args.scale(1.0, 0.25);

  std::vector<double> rates = {8'000, 32'000, 96'000,
                               192'000, 320'000, 480'000};
  if (args.quick) rates = {8'000, 96'000, 320'000};

  // Static columns plus the admission-controlled store (TLE guards; no
  // method switching here — this figure isolates the shedding behavior).
  const char* statics[] = {"Lock", "TLE", "RW-TLE", "FG-TLE(256)",
                           "RHNOrec"};

  struct Cell {
    std::uint64_t p99 = 0;
    double served_per_ms = 0.0;
    std::uint64_t sheds = 0;
  };
  std::vector<std::vector<Cell>> grid;  // [rate][method], Adaptive last

  std::vector<std::string> header = {"arrivals/ms"};
  for (const char* n : statics) header.push_back(n);
  header.push_back("Adaptive");
  Table p99_table(header);

  for (double rate : rates) {
    std::vector<Cell> row_cells;
    std::vector<std::string> row = {Table::num(rate, 0)};
    auto run_one = [&](const char* name, bool adaptive) {
      oltp::WorkloadConfig cfg = base_config(args, duration);
      cfg.arrivals_per_ms = rate;
      if (adaptive) {
        cfg.policy.enabled = true;
        cfg.policy.admit.slo_p99_cycles = kSloCycles;
        cfg.policy.admit.interval_cycles = 4 * kSloCycles;
      }
      const auto r =
          oltp::run_workload(cfg, bench::method_by_name(name));
      const std::string label = adaptive ? "Adaptive" : name;
      bench::report_cell(label, "xeon/s8/t18/" + rate_tag(rate),
                         metrics_of(r, cfg.machine, duration));
      Cell c;
      c.p99 = r.sojourn_p99;
      c.served_per_ms = r.ops_per_ms;
      c.sheds = r.admit_sheds;
      row_cells.push_back(c);
      row.push_back(Table::num(c.p99 / 1000.0, 1) +
                    (c.p99 > kSloCycles ? "*" : ""));
      if (args.stats) {
        std::printf("  [stats] %-12s r=%-7g %s\n", label.c_str(), rate,
                    r.stats.summary().c_str());
      }
    };
    for (const char* n : statics) run_one(n, /*adaptive=*/false);
    run_one("TLE", /*adaptive=*/true);
    grid.push_back(std::move(row_cells));
    p99_table.add_row(std::move(row));
  }
  std::printf("p99 sojourn (kcycles; * = misses the %llu-cycle SLO):\n",
              static_cast<unsigned long long>(kSloCycles));
  p99_table.print(args.csv);

  // Capacity summary: largest swept rate each method sustains within the
  // SLO, and what the admission-controlled store served (and shed) at the
  // top of the sweep.
  Table cap({"method", "max rate (SLO ok)", "served ops/ms", "shed"});
  const std::size_t ncols = std::size(statics) + 1;
  for (std::size_t m = 0; m < ncols; ++m) {
    double max_rate = 0.0;
    double served = 0.0;
    for (std::size_t ri = 0; ri < rates.size(); ++ri) {
      if (grid[ri][m].p99 <= kSloCycles && rates[ri] > max_rate) {
        max_rate = rates[ri];
        served = grid[ri][m].served_per_ms;
      }
    }
    const Cell& top = grid.back()[m];
    const char* name = m < std::size(statics) ? statics[m] : "Adaptive";
    cap.add_row({name,
                 max_rate > 0 ? Table::num(max_rate, 0) : "none",
                 Table::num(served, 0),
                 m + 1 == ncols ? Table::num(top.sheds) : "-"});
  }
  std::printf("capacity under SLO (shed column: top-rate run):\n");
  cap.print(args.csv);
}
