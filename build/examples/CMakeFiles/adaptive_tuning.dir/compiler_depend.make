# Empty compiler generated dependencies file for adaptive_tuning.
# This may be replaced when dependencies are built.
