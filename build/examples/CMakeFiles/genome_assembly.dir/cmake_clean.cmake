file(REMOVE_RECURSE
  "CMakeFiles/genome_assembly.dir/genome_assembly.cpp.o"
  "CMakeFiles/genome_assembly.dir/genome_assembly.cpp.o.d"
  "genome_assembly"
  "genome_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genome_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
