# Empty dependencies file for genome_assembly.
# This may be replaced when dependencies are built.
