file(REMOVE_RECURSE
  "CMakeFiles/bank_transfer.dir/bank_transfer.cpp.o"
  "CMakeFiles/bank_transfer.dir/bank_transfer.cpp.o.d"
  "bank_transfer"
  "bank_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
