file(REMOVE_RECURSE
  "CMakeFiles/fig08_rhnorec_slowpath.dir/fig08_rhnorec_slowpath.cpp.o"
  "CMakeFiles/fig08_rhnorec_slowpath.dir/fig08_rhnorec_slowpath.cpp.o.d"
  "fig08_rhnorec_slowpath"
  "fig08_rhnorec_slowpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_rhnorec_slowpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
