# Empty compiler generated dependencies file for fig08_rhnorec_slowpath.
# This may be replaced when dependencies are built.
