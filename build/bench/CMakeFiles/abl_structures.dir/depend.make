# Empty dependencies file for abl_structures.
# This may be replaced when dependencies are built.
