file(REMOVE_RECURSE
  "CMakeFiles/abl_structures.dir/abl_structures.cpp.o"
  "CMakeFiles/abl_structures.dir/abl_structures.cpp.o.d"
  "abl_structures"
  "abl_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
