# Empty dependencies file for abl_orec_skew.
# This may be replaced when dependencies are built.
