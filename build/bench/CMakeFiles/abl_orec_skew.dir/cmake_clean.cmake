file(REMOVE_RECURSE
  "CMakeFiles/abl_orec_skew.dir/abl_orec_skew.cpp.o"
  "CMakeFiles/abl_orec_skew.dir/abl_orec_skew.cpp.o.d"
  "abl_orec_skew"
  "abl_orec_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_orec_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
