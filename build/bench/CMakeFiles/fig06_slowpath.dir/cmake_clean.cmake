file(REMOVE_RECURSE
  "CMakeFiles/fig06_slowpath.dir/fig06_slowpath.cpp.o"
  "CMakeFiles/fig06_slowpath.dir/fig06_slowpath.cpp.o.d"
  "fig06_slowpath"
  "fig06_slowpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_slowpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
