# Empty compiler generated dependencies file for fig06_slowpath.
# This may be replaced when dependencies are built.
