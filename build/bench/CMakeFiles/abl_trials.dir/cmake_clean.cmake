file(REMOVE_RECURSE
  "CMakeFiles/abl_trials.dir/abl_trials.cpp.o"
  "CMakeFiles/abl_trials.dir/abl_trials.cpp.o.d"
  "abl_trials"
  "abl_trials.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_trials.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
