# Empty compiler generated dependencies file for abl_trials.
# This may be replaced when dependencies are built.
