# Empty compiler generated dependencies file for abl_lazy_subscription.
# This may be replaced when dependencies are built.
