file(REMOVE_RECURSE
  "CMakeFiles/abl_lazy_subscription.dir/abl_lazy_subscription.cpp.o"
  "CMakeFiles/abl_lazy_subscription.dir/abl_lazy_subscription.cpp.o.d"
  "abl_lazy_subscription"
  "abl_lazy_subscription.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lazy_subscription.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
