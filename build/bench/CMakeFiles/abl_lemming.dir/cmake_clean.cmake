file(REMOVE_RECURSE
  "CMakeFiles/abl_lemming.dir/abl_lemming.cpp.o"
  "CMakeFiles/abl_lemming.dir/abl_lemming.cpp.o.d"
  "abl_lemming"
  "abl_lemming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lemming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
