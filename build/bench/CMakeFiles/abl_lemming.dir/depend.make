# Empty dependencies file for abl_lemming.
# This may be replaced when dependencies are built.
