file(REMOVE_RECURSE
  "CMakeFiles/abl_adaptive.dir/abl_adaptive.cpp.o"
  "CMakeFiles/abl_adaptive.dir/abl_adaptive.cpp.o.d"
  "abl_adaptive"
  "abl_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
