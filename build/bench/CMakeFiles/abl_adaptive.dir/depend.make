# Empty dependencies file for abl_adaptive.
# This may be replaced when dependencies are built.
