file(REMOVE_RECURSE
  "CMakeFiles/fig07_time_under_lock.dir/fig07_time_under_lock.cpp.o"
  "CMakeFiles/fig07_time_under_lock.dir/fig07_time_under_lock.cpp.o.d"
  "fig07_time_under_lock"
  "fig07_time_under_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_time_under_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
