# Empty compiler generated dependencies file for fig07_time_under_lock.
# This may be replaced when dependencies are built.
