file(REMOVE_RECURSE
  "CMakeFiles/fig12_unfriendly.dir/fig12_unfriendly.cpp.o"
  "CMakeFiles/fig12_unfriendly.dir/fig12_unfriendly.cpp.o.d"
  "fig12_unfriendly"
  "fig12_unfriendly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_unfriendly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
