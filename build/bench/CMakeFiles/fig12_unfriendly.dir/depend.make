# Empty dependencies file for fig12_unfriendly.
# This may be replaced when dependencies are built.
