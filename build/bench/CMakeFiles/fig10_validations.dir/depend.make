# Empty dependencies file for fig10_validations.
# This may be replaced when dependencies are built.
