file(REMOVE_RECURSE
  "CMakeFiles/fig10_validations.dir/fig10_validations.cpp.o"
  "CMakeFiles/fig10_validations.dir/fig10_validations.cpp.o.d"
  "fig10_validations"
  "fig10_validations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_validations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
