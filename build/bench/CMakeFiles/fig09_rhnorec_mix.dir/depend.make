# Empty dependencies file for fig09_rhnorec_mix.
# This may be replaced when dependencies are built.
