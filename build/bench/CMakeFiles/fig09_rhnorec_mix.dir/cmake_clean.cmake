file(REMOVE_RECURSE
  "CMakeFiles/fig09_rhnorec_mix.dir/fig09_rhnorec_mix.cpp.o"
  "CMakeFiles/fig09_rhnorec_mix.dir/fig09_rhnorec_mix.cpp.o.d"
  "fig09_rhnorec_mix"
  "fig09_rhnorec_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_rhnorec_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
