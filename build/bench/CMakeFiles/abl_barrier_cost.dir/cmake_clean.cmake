file(REMOVE_RECURSE
  "CMakeFiles/abl_barrier_cost.dir/abl_barrier_cost.cpp.o"
  "CMakeFiles/abl_barrier_cost.dir/abl_barrier_cost.cpp.o.d"
  "abl_barrier_cost"
  "abl_barrier_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_barrier_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
