# Empty compiler generated dependencies file for abl_barrier_cost.
# This may be replaced when dependencies are built.
