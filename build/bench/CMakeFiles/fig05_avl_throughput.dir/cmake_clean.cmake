file(REMOVE_RECURSE
  "CMakeFiles/fig05_avl_throughput.dir/fig05_avl_throughput.cpp.o"
  "CMakeFiles/fig05_avl_throughput.dir/fig05_avl_throughput.cpp.o.d"
  "fig05_avl_throughput"
  "fig05_avl_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_avl_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
