# Empty dependencies file for fig05_avl_throughput.
# This may be replaced when dependencies are built.
