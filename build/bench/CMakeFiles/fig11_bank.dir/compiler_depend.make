# Empty compiler generated dependencies file for fig11_bank.
# This may be replaced when dependencies are built.
