file(REMOVE_RECURSE
  "CMakeFiles/fig11_bank.dir/fig11_bank.cpp.o"
  "CMakeFiles/fig11_bank.dir/fig11_bank.cpp.o.d"
  "fig11_bank"
  "fig11_bank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
