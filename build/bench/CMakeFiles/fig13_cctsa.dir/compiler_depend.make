# Empty compiler generated dependencies file for fig13_cctsa.
# This may be replaced when dependencies are built.
