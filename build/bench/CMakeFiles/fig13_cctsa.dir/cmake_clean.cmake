file(REMOVE_RECURSE
  "CMakeFiles/fig13_cctsa.dir/fig13_cctsa.cpp.o"
  "CMakeFiles/fig13_cctsa.dir/fig13_cctsa.cpp.o.d"
  "fig13_cctsa"
  "fig13_cctsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_cctsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
