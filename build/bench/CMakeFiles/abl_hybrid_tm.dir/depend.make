# Empty dependencies file for abl_hybrid_tm.
# This may be replaced when dependencies are built.
