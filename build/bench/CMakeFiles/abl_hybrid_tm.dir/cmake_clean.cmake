file(REMOVE_RECURSE
  "CMakeFiles/abl_hybrid_tm.dir/abl_hybrid_tm.cpp.o"
  "CMakeFiles/abl_hybrid_tm.dir/abl_hybrid_tm.cpp.o.d"
  "abl_hybrid_tm"
  "abl_hybrid_tm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_hybrid_tm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
