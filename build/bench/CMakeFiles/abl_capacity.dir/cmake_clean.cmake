file(REMOVE_RECURSE
  "CMakeFiles/abl_capacity.dir/abl_capacity.cpp.o"
  "CMakeFiles/abl_capacity.dir/abl_capacity.cpp.o.d"
  "abl_capacity"
  "abl_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
