# Empty dependencies file for abl_capacity.
# This may be replaced when dependencies are built.
