# Empty compiler generated dependencies file for rtle.
# This may be replaced when dependencies are built.
