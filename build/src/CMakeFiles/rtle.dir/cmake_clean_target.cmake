file(REMOVE_RECURSE
  "librtle.a"
)
