
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  "ASM"
  )
# The set of files for implicit dependencies of each language:
set(CMAKE_DEPENDS_CHECK_ASM
  "/root/repo/src/sim/ctx_switch.S" "/root/repo/build/src/CMakeFiles/rtle.dir/sim/ctx_switch.S.o"
  )
set(CMAKE_ASM_COMPILER_ID "GNU")

# The include file search paths:
set(CMAKE_ASM_TARGET_INCLUDE_PATH
  "/root/repo/src"
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_util/setbench.cpp" "src/CMakeFiles/rtle.dir/bench_util/setbench.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/bench_util/setbench.cpp.o.d"
  "/root/repo/src/bench_util/table.cpp" "src/CMakeFiles/rtle.dir/bench_util/table.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/bench_util/table.cpp.o.d"
  "/root/repo/src/cctsa/assembler.cpp" "src/CMakeFiles/rtle.dir/cctsa/assembler.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/cctsa/assembler.cpp.o.d"
  "/root/repo/src/cctsa/genome.cpp" "src/CMakeFiles/rtle.dir/cctsa/genome.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/cctsa/genome.cpp.o.d"
  "/root/repo/src/cctsa/graph.cpp" "src/CMakeFiles/rtle.dir/cctsa/graph.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/cctsa/graph.cpp.o.d"
  "/root/repo/src/cctsa/kmer.cpp" "src/CMakeFiles/rtle.dir/cctsa/kmer.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/cctsa/kmer.cpp.o.d"
  "/root/repo/src/ds/avl.cpp" "src/CMakeFiles/rtle.dir/ds/avl.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/ds/avl.cpp.o.d"
  "/root/repo/src/ds/bank.cpp" "src/CMakeFiles/rtle.dir/ds/bank.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/ds/bank.cpp.o.d"
  "/root/repo/src/ds/hashmap.cpp" "src/CMakeFiles/rtle.dir/ds/hashmap.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/ds/hashmap.cpp.o.d"
  "/root/repo/src/ds/skiplist.cpp" "src/CMakeFiles/rtle.dir/ds/skiplist.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/ds/skiplist.cpp.o.d"
  "/root/repo/src/htm/htm.cpp" "src/CMakeFiles/rtle.dir/htm/htm.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/htm/htm.cpp.o.d"
  "/root/repo/src/mem/shim.cpp" "src/CMakeFiles/rtle.dir/mem/shim.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/mem/shim.cpp.o.d"
  "/root/repo/src/runtime/context.cpp" "src/CMakeFiles/rtle.dir/runtime/context.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/runtime/context.cpp.o.d"
  "/root/repo/src/runtime/engine.cpp" "src/CMakeFiles/rtle.dir/runtime/engine.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/runtime/engine.cpp.o.d"
  "/root/repo/src/runtime/libitm_compat.cpp" "src/CMakeFiles/rtle.dir/runtime/libitm_compat.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/runtime/libitm_compat.cpp.o.d"
  "/root/repo/src/runtime/stats.cpp" "src/CMakeFiles/rtle.dir/runtime/stats.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/runtime/stats.cpp.o.d"
  "/root/repo/src/sim/env.cpp" "src/CMakeFiles/rtle.dir/sim/env.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/sim/env.cpp.o.d"
  "/root/repo/src/sim/fiber.cpp" "src/CMakeFiles/rtle.dir/sim/fiber.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/sim/fiber.cpp.o.d"
  "/root/repo/src/sim/sched.cpp" "src/CMakeFiles/rtle.dir/sim/sched.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/sim/sched.cpp.o.d"
  "/root/repo/src/stm/hybrid_norec.cpp" "src/CMakeFiles/rtle.dir/stm/hybrid_norec.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/stm/hybrid_norec.cpp.o.d"
  "/root/repo/src/stm/norec.cpp" "src/CMakeFiles/rtle.dir/stm/norec.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/stm/norec.cpp.o.d"
  "/root/repo/src/stm/rhnorec.cpp" "src/CMakeFiles/rtle.dir/stm/rhnorec.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/stm/rhnorec.cpp.o.d"
  "/root/repo/src/sync/lock.cpp" "src/CMakeFiles/rtle.dir/sync/lock.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/sync/lock.cpp.o.d"
  "/root/repo/src/tle/adaptive.cpp" "src/CMakeFiles/rtle.dir/tle/adaptive.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/tle/adaptive.cpp.o.d"
  "/root/repo/src/tle/fgtle.cpp" "src/CMakeFiles/rtle.dir/tle/fgtle.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/tle/fgtle.cpp.o.d"
  "/root/repo/src/tle/rwtle.cpp" "src/CMakeFiles/rtle.dir/tle/rwtle.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/tle/rwtle.cpp.o.d"
  "/root/repo/src/tle/tle.cpp" "src/CMakeFiles/rtle.dir/tle/tle.cpp.o" "gcc" "src/CMakeFiles/rtle.dir/tle/tle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
