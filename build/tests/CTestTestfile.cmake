# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_htm[1]_include.cmake")
include("/root/repo/build/tests/test_avl[1]_include.cmake")
include("/root/repo/build/tests/test_method[1]_include.cmake")
include("/root/repo/build/tests/test_stm[1]_include.cmake")
include("/root/repo/build/tests/test_tle[1]_include.cmake")
include("/root/repo/build/tests/test_hashmap[1]_include.cmake")
include("/root/repo/build/tests/test_bank[1]_include.cmake")
include("/root/repo/build/tests/test_cctsa[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_htm2[1]_include.cmake")
include("/root/repo/build/tests/test_avl_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_skiplist[1]_include.cmake")
include("/root/repo/build/tests/test_engine_policy[1]_include.cmake")
include("/root/repo/build/tests/test_stm2[1]_include.cmake")
