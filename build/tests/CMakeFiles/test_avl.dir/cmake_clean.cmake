file(REMOVE_RECURSE
  "CMakeFiles/test_avl.dir/avl_test.cpp.o"
  "CMakeFiles/test_avl.dir/avl_test.cpp.o.d"
  "test_avl"
  "test_avl.pdb"
  "test_avl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_avl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
