# Empty dependencies file for test_avl.
# This may be replaced when dependencies are built.
