# Empty dependencies file for test_htm2.
# This may be replaced when dependencies are built.
