file(REMOVE_RECURSE
  "CMakeFiles/test_htm2.dir/htm2_test.cpp.o"
  "CMakeFiles/test_htm2.dir/htm2_test.cpp.o.d"
  "test_htm2"
  "test_htm2.pdb"
  "test_htm2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_htm2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
