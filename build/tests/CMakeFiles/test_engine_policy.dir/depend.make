# Empty dependencies file for test_engine_policy.
# This may be replaced when dependencies are built.
