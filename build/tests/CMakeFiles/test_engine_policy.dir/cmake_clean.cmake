file(REMOVE_RECURSE
  "CMakeFiles/test_engine_policy.dir/engine_policy_test.cpp.o"
  "CMakeFiles/test_engine_policy.dir/engine_policy_test.cpp.o.d"
  "test_engine_policy"
  "test_engine_policy.pdb"
  "test_engine_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
