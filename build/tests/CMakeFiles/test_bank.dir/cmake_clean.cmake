file(REMOVE_RECURSE
  "CMakeFiles/test_bank.dir/bank_test.cpp.o"
  "CMakeFiles/test_bank.dir/bank_test.cpp.o.d"
  "test_bank"
  "test_bank.pdb"
  "test_bank[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
