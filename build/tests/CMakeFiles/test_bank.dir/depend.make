# Empty dependencies file for test_bank.
# This may be replaced when dependencies are built.
