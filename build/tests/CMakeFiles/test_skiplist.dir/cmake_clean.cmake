file(REMOVE_RECURSE
  "CMakeFiles/test_skiplist.dir/skiplist_test.cpp.o"
  "CMakeFiles/test_skiplist.dir/skiplist_test.cpp.o.d"
  "test_skiplist"
  "test_skiplist.pdb"
  "test_skiplist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skiplist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
