# Empty compiler generated dependencies file for test_skiplist.
# This may be replaced when dependencies are built.
