file(REMOVE_RECURSE
  "CMakeFiles/test_cctsa.dir/cctsa_test.cpp.o"
  "CMakeFiles/test_cctsa.dir/cctsa_test.cpp.o.d"
  "test_cctsa"
  "test_cctsa.pdb"
  "test_cctsa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cctsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
