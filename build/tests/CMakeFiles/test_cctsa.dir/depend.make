# Empty dependencies file for test_cctsa.
# This may be replaced when dependencies are built.
