file(REMOVE_RECURSE
  "CMakeFiles/test_hashmap.dir/hashmap_test.cpp.o"
  "CMakeFiles/test_hashmap.dir/hashmap_test.cpp.o.d"
  "test_hashmap"
  "test_hashmap.pdb"
  "test_hashmap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hashmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
