# Empty compiler generated dependencies file for test_hashmap.
# This may be replaced when dependencies are built.
