file(REMOVE_RECURSE
  "CMakeFiles/test_method.dir/method_test.cpp.o"
  "CMakeFiles/test_method.dir/method_test.cpp.o.d"
  "test_method"
  "test_method.pdb"
  "test_method[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_method.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
