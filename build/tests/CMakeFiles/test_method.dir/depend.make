# Empty dependencies file for test_method.
# This may be replaced when dependencies are built.
