# Empty compiler generated dependencies file for test_tle.
# This may be replaced when dependencies are built.
