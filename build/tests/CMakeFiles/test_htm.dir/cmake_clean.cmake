file(REMOVE_RECURSE
  "CMakeFiles/test_htm.dir/htm_test.cpp.o"
  "CMakeFiles/test_htm.dir/htm_test.cpp.o.d"
  "test_htm"
  "test_htm.pdb"
  "test_htm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
