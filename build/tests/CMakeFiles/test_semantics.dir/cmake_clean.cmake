file(REMOVE_RECURSE
  "CMakeFiles/test_semantics.dir/semantics_test.cpp.o"
  "CMakeFiles/test_semantics.dir/semantics_test.cpp.o.d"
  "test_semantics"
  "test_semantics.pdb"
  "test_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
