file(REMOVE_RECURSE
  "CMakeFiles/test_avl_sweep.dir/avl_sweep_test.cpp.o"
  "CMakeFiles/test_avl_sweep.dir/avl_sweep_test.cpp.o.d"
  "test_avl_sweep"
  "test_avl_sweep.pdb"
  "test_avl_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_avl_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
