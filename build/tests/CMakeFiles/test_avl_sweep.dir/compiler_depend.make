# Empty compiler generated dependencies file for test_avl_sweep.
# This may be replaced when dependencies are built.
