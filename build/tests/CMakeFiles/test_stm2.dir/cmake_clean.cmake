file(REMOVE_RECURSE
  "CMakeFiles/test_stm2.dir/stm2_test.cpp.o"
  "CMakeFiles/test_stm2.dir/stm2_test.cpp.o.d"
  "test_stm2"
  "test_stm2.pdb"
  "test_stm2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stm2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
