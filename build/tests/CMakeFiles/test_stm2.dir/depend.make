# Empty dependencies file for test_stm2.
# This may be replaced when dependencies are built.
