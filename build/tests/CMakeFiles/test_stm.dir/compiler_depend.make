# Empty compiler generated dependencies file for test_stm.
# This may be replaced when dependencies are built.
